package storage

// frame.go implements version 2 of the batch codec: compressed spill frames.
// Where the v1 layout (spill.go) writes fixed 8-byte ints/floats and full
// length-prefixed strings per row, v2 picks a lightweight per-column encoding
// and falls back to the raw v1 payload whenever the encoding does not win:
//
//   - string columns dictionary-encode: a sorted unique-value dictionary per
//     frame followed by one uvarint code per row. Because the dictionary is
//     sorted, code order equals string order and code equality equals string
//     equality within the frame, which is what lets the dataflow layer run
//     group-by/distinct/sort fast paths directly on codes (batch.go keeps the
//     dictionary and codes on the decoded Column);
//   - int/time columns delta-encode: zig-zag varints of the first value and
//     the successive differences, so sorted ids and timestamps shrink to a
//     byte or two per row;
//   - bool columns and null bitmaps run-length encode;
//   - float columns stay raw (IEEE-754 bit exactness is the codec contract
//     and floats rarely compress without loss).
//
// On top of the column encodings an opt-in whole-frame block layer
// (CodecOptions.Block) squeezes the encoded body through a small pure-Go
// LZ77 compressor — no cgo, no external bindings — and keeps the body raw
// when compression does not pay. DecodeBatch (spill.go) dispatches on the
// version byte, so v1 frames written by older spill files still decode.
//
// Every encoding decision is deterministic (sorted dictionaries, fixed
// tie-breaks), so re-encoding identical batches yields identical bytes — the
// property the aggregation spill tests rely on.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// batchVersion2 is the compressed-frame codec version.
const batchVersion2 byte = 2

// frameFlagBlock marks a v2 frame whose body went through the LZ block layer.
const frameFlagBlock byte = 0x01

// Column encoding tags (v2). encRaw payloads use the exact v1 value layout.
const (
	encRaw   byte = 0
	encDict  byte = 1 // strings: sorted dictionary + per-row codes
	encDelta byte = 2 // ints/times: zig-zag varint first value + deltas
	encRLE   byte = 3 // bools: run-length runs
)

// Null-section modes (v2). The null bitmap is framed separately from the
// value payload so it can RLE independently of the value encoding.
const (
	nullsNone byte = 0
	nullsRaw  byte = 1 // uvarint words + little-endian words (v1 layout)
	nullsRLE  byte = 2 // uvarint runs + run lengths, first run non-null
)

// maxFrameRows bounds the row count a v2 frame may declare. The run-length
// and dictionary encodings decouple payload size from row count, so without a
// bound a corrupt frame could declare an absurd row count and drive a huge
// allocation before any per-row data is read. Encoders fall back to v1 (whose
// row count is naturally bounded by payload bytes) for batches past the
// bound; real spill frames are orders of magnitude smaller.
const maxFrameRows = 1 << 24

// maxFrameBodyBytes bounds the uncompressed body size the block layer will
// declare or inflate — the same allocation-bomb guard for the LZ layer, whose
// overlapped copies can expand a few bytes into gigabytes.
const maxFrameBodyBytes = 1 << 28

// CodecOptions selects the batch codec a spill store writes with. The zero
// value is the v1 raw codec.
type CodecOptions struct {
	// Compress enables the v2 per-column encodings (dictionary strings,
	// delta ints, RLE bools/null bitmaps, raw fallback).
	Compress bool
	// Block additionally passes each encoded v2 frame through the pure-Go LZ
	// block layer. Only meaningful with Compress; frames where the block
	// layer does not win are stored with the body raw.
	Block bool
}

// EncodeBatchOpts appends the encoding of b under the given codec options:
// the v1 layout when opts.Compress is unset (or the batch is too large for a
// v2 frame), the v2 compressed-frame layout otherwise. DecodeBatch accepts
// either, so readers need no options.
func EncodeBatchOpts(dst []byte, b *ColumnBatch, opts CodecOptions) []byte {
	if !opts.Compress || b.n > maxFrameRows {
		return EncodeBatch(dst, b)
	}
	base := len(dst)
	dst = append(dst, batchMagic, batchVersion2, 0)
	bodyStart := len(dst)
	dst = appendFrameBody(dst, b)
	if !opts.Block {
		return dst
	}
	body := dst[bodyStart:]
	if len(body) > maxFrameBodyBytes {
		return dst
	}
	var comp []byte
	comp = binary.AppendUvarint(comp, uint64(len(body)))
	comp = lzCompress(comp, body)
	if len(comp) >= len(body) {
		return dst // block layer did not win; keep the raw body
	}
	dst[base+2] |= frameFlagBlock
	dst = append(dst[:bodyStart], comp...)
	return dst
}

// appendFrameBody appends the v2 body: row/column counts then each column as
// a (type, encoding, payload-length, payload) record.
func appendFrameBody(dst []byte, b *ColumnBatch) []byte {
	dst = binary.AppendUvarint(dst, uint64(b.n))
	dst = binary.AppendUvarint(dst, uint64(len(b.cols)))
	var scratch, raw []byte
	for c := range b.cols {
		col := &b.cols[c]
		enc := encRaw
		scratch = appendNullSection(scratch[:0], col, b.n)
		switch col.typ {
		case TypeInt, TypeTime:
			raw = appendRawValues(raw[:0], col, b.n)
			mark := len(scratch)
			scratch = appendDeltaInts(scratch, col.ints[:b.n])
			if len(scratch)-mark < len(raw) {
				enc = encDelta
			} else {
				scratch = append(scratch[:mark], raw...)
			}
		case TypeString:
			raw = appendRawValues(raw[:0], col, b.n)
			mark := len(scratch)
			scratch = appendDictStrings(scratch, col.strs[:b.n])
			if len(scratch)-mark < len(raw) {
				enc = encDict
			} else {
				scratch = append(scratch[:mark], raw...)
			}
		case TypeBool:
			raw = appendRawValues(raw[:0], col, b.n)
			mark := len(scratch)
			scratch = appendRLEBools(scratch, col.bools[:b.n])
			if len(scratch)-mark < len(raw) {
				enc = encRLE
			} else {
				scratch = append(scratch[:mark], raw...)
			}
		default: // floats (and anything future) stay raw
			scratch = appendRawValues(scratch, col, b.n)
		}
		dst = append(dst, byte(col.typ), enc)
		dst = binary.AppendUvarint(dst, uint64(len(scratch)))
		dst = append(dst, scratch...)
	}
	return dst
}

// appendNullSection encodes col's null bitmap over rows [0, n) in whichever
// of the raw/RLE forms is smaller (or a single mode byte when the column has
// no nulls in range).
func appendNullSection(dst []byte, col *Column, n int) []byte {
	words := (n + 63) / 64
	if words > len(col.nulls) {
		words = len(col.nulls)
	}
	// Mask stray bits past n (Head views share a longer parent bitmap) and
	// drop trailing all-zero words so an effectively null-free column costs
	// one byte.
	masked := make(nullBitmap, words)
	for w := 0; w < words; w++ {
		word := col.nulls[w]
		if hi := n - w*64; hi < 64 {
			word &= (1 << uint(hi)) - 1
		}
		masked[w] = word
	}
	for len(masked) > 0 && masked[len(masked)-1] == 0 {
		masked = masked[:len(masked)-1]
	}
	if len(masked) == 0 {
		return append(dst, nullsNone)
	}
	var raw []byte
	raw = binary.AppendUvarint(raw, uint64(len(masked)))
	for _, w := range masked {
		raw = binary.LittleEndian.AppendUint64(raw, w)
	}
	// RLE over row status: alternating run lengths, first run non-null.
	var runs []byte
	nRuns := 0
	i := 0
	for i < n {
		status := masked.get(i)
		j := i
		for j < n && masked.get(j) == status {
			j++
		}
		if nRuns == 0 && status {
			// First run must be non-null by convention; emit a zero-length
			// non-null run ahead of a leading null run.
			runs = binary.AppendUvarint(runs, 0)
			nRuns++
		}
		runs = binary.AppendUvarint(runs, uint64(j-i))
		nRuns++
		i = j
	}
	var rle []byte
	rle = binary.AppendUvarint(rle, uint64(nRuns))
	rle = append(rle, runs...)
	if len(rle) < len(raw) {
		dst = append(dst, nullsRLE)
		return append(dst, rle...)
	}
	dst = append(dst, nullsRaw)
	return append(dst, raw...)
}

// appendRawValues encodes col's value vector exactly as v1 does (spill.go's
// value layout), without the null bitmap prefix.
func appendRawValues(dst []byte, col *Column, n int) []byte {
	switch col.typ {
	case TypeInt, TypeTime:
		for i := 0; i < n; i++ {
			dst = binary.BigEndian.AppendUint64(dst, uint64(col.ints[i]))
		}
	case TypeFloat:
		for i := 0; i < n; i++ {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(col.floats[i]))
		}
	case TypeBool:
		packed := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if col.bools[i] {
				packed[i>>3] |= 1 << uint(i&7)
			}
		}
		dst = append(dst, packed...)
	case TypeString:
		for i := 0; i < n; i++ {
			dst = binary.AppendUvarint(dst, uint64(len(col.strs[i])))
			dst = append(dst, col.strs[i]...)
		}
	}
	return dst
}

// zigzag folds signed deltas into unsigned varint space (small magnitudes of
// either sign stay short).
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendDeltaInts encodes vals as zig-zag varints of the first value and each
// successive delta.
func appendDeltaInts(dst []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

// appendDictStrings encodes vals as a sorted unique-value dictionary followed
// by one uvarint code per row. Sorting makes the encoding deterministic and
// gives decoded frames the sorted-dictionary invariant the code-based
// operator fast paths rely on.
func appendDictStrings(dst []byte, vals []string) []byte {
	uniq := make(map[string]uint32, len(vals)/4+1)
	for _, s := range vals {
		if _, ok := uniq[s]; !ok {
			uniq[s] = 0
		}
	}
	dict := make([]string, 0, len(uniq))
	for s := range uniq {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	for i, s := range dict {
		uniq[s] = uint32(i)
	}
	dst = binary.AppendUvarint(dst, uint64(len(dict)))
	for _, s := range dict {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	for _, s := range vals {
		dst = binary.AppendUvarint(dst, uint64(uniq[s]))
	}
	return dst
}

// appendRLEBools encodes vals as a first-value byte plus alternating run
// lengths.
func appendRLEBools(dst []byte, vals []bool) []byte {
	var first byte
	if len(vals) > 0 && vals[0] {
		first = 1
	}
	var runs []byte
	nRuns := 0
	i := 0
	for i < len(vals) {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		runs = binary.AppendUvarint(runs, uint64(j-i))
		nRuns++
		i = j
	}
	dst = append(dst, first)
	dst = binary.AppendUvarint(dst, uint64(nRuns))
	return append(dst, runs...)
}

// decodeBatchV2 reconstructs a v2 frame body (block layer already removed).
func decodeBatchV2(schema *Schema, data []byte) (*ColumnBatch, error) {
	rows, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("%w: truncated row count", ErrBadBatchEncoding)
	}
	data = data[k:]
	if rows > maxFrameRows {
		return nil, fmt.Errorf("%w: row count %d exceeds frame bound", ErrBadBatchEncoding, rows)
	}
	cols, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("%w: truncated column count", ErrBadBatchEncoding)
	}
	data = data[k:]
	if int(cols) != schema.Len() {
		return nil, fmt.Errorf("%w: batch has %d columns, schema %s has %d",
			ErrBadBatchEncoding, cols, schema, schema.Len())
	}
	n := int(rows)
	b := &ColumnBatch{schema: schema, cols: make([]Column, cols), n: n}
	for c := range b.cols {
		if len(data) < 2 {
			return nil, fmt.Errorf("%w: truncated column %d", ErrBadBatchEncoding, c)
		}
		typ := FieldType(data[0])
		if want := schema.Field(c).Type; typ != want {
			return nil, fmt.Errorf("%w: column %d encoded as %s, schema expects %s",
				ErrBadBatchEncoding, c, typ, want)
		}
		enc := data[1]
		data = data[2:]
		plen, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < plen {
			return nil, fmt.Errorf("%w: truncated column %d payload", ErrBadBatchEncoding, c)
		}
		data = data[k:]
		if err := decodeColumnPayloadV2(&b.cols[c], typ, enc, data[:plen], n); err != nil {
			return nil, fmt.Errorf("column %d: %w", c, err)
		}
		data = data[plen:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after frame body", ErrBadBatchEncoding, len(data))
	}
	return b, nil
}

// decodeColumnPayloadV2 decodes one v2 column payload: the null section, then
// the values under the declared encoding.
func decodeColumnPayloadV2(col *Column, typ FieldType, enc byte, data []byte, n int) error {
	col.typ = typ
	rest, err := decodeNullSection(col, data, n)
	if err != nil {
		return err
	}
	data = rest
	switch {
	case enc == encRaw:
		return decodeRawValues(col, typ, data, n)
	case enc == encDelta && (typ == TypeInt || typ == TypeTime):
		return decodeDeltaInts(col, data, n)
	case enc == encDict && typ == TypeString:
		return decodeDictStrings(col, data, n)
	case enc == encRLE && typ == TypeBool:
		return decodeRLEBools(col, data, n)
	default:
		return fmt.Errorf("%w: encoding %d invalid for column type %s", ErrBadBatchEncoding, enc, typ)
	}
}

// decodeNullSection parses the null-section prefix into col.nulls, returning
// the remaining value bytes.
func decodeNullSection(col *Column, data []byte, n int) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: truncated null section", ErrBadBatchEncoding)
	}
	mode := data[0]
	data = data[1:]
	switch mode {
	case nullsNone:
		return data, nil
	case nullsRaw:
		words, k := binary.Uvarint(data)
		// Division-based bound: a forged word count near 2^64 would overflow
		// a words*8 comparison.
		if k <= 0 || words > uint64(len(data)-k)/8 {
			return nil, fmt.Errorf("%w: truncated null bitmap", ErrBadBatchEncoding)
		}
		data = data[k:]
		if words > uint64(n+63)/64 {
			return nil, fmt.Errorf("%w: null bitmap longer than row count", ErrBadBatchEncoding)
		}
		if words > 0 {
			col.nulls = make(nullBitmap, words)
			for w := range col.nulls {
				col.nulls[w] = binary.LittleEndian.Uint64(data[w*8:])
			}
			data = data[words*8:]
		}
		return data, nil
	case nullsRLE:
		nRuns, k := binary.Uvarint(data)
		if k <= 0 || nRuns > uint64(len(data)-k) {
			return nil, fmt.Errorf("%w: truncated null runs", ErrBadBatchEncoding)
		}
		data = data[k:]
		row := uint64(0)
		null := false
		for r := uint64(0); r < nRuns; r++ {
			l, k := binary.Uvarint(data)
			if k <= 0 {
				return nil, fmt.Errorf("%w: truncated null run %d", ErrBadBatchEncoding, r)
			}
			data = data[k:]
			if l > uint64(n)-row {
				return nil, fmt.Errorf("%w: null runs exceed row count", ErrBadBatchEncoding)
			}
			if null {
				for i := row; i < row+l; i++ {
					col.nulls.set(int(i))
				}
			}
			row += l
			null = !null
		}
		if row != uint64(n) {
			return nil, fmt.Errorf("%w: null runs cover %d of %d rows", ErrBadBatchEncoding, row, n)
		}
		return data, nil
	default:
		return nil, fmt.Errorf("%w: unknown null-section mode %d", ErrBadBatchEncoding, mode)
	}
}

// decodeRawValues decodes a raw (v1-layout) value payload.
func decodeRawValues(col *Column, typ FieldType, data []byte, n int) error {
	switch typ {
	case TypeInt, TypeTime:
		if len(data) != n*8 {
			return fmt.Errorf("%w: int column payload is %d bytes, want %d", ErrBadBatchEncoding, len(data), n*8)
		}
		col.ints = make([]int64, n)
		for i := range col.ints {
			col.ints[i] = int64(binary.BigEndian.Uint64(data[i*8:]))
		}
	case TypeFloat:
		if len(data) != n*8 {
			return fmt.Errorf("%w: float column payload is %d bytes, want %d", ErrBadBatchEncoding, len(data), n*8)
		}
		col.floats = make([]float64, n)
		for i := range col.floats {
			col.floats[i] = math.Float64frombits(binary.BigEndian.Uint64(data[i*8:]))
		}
	case TypeBool:
		if len(data) != (n+7)/8 {
			return fmt.Errorf("%w: bool column payload is %d bytes, want %d", ErrBadBatchEncoding, len(data), (n+7)/8)
		}
		col.bools = make([]bool, n)
		for i := range col.bools {
			col.bools[i] = data[i>>3]&(1<<uint(i&7)) != 0
		}
	case TypeString:
		col.strs = make([]string, n)
		for i := range col.strs {
			l, k := binary.Uvarint(data)
			if k <= 0 || uint64(len(data)-k) < l {
				return fmt.Errorf("%w: truncated string row %d", ErrBadBatchEncoding, i)
			}
			col.strs[i] = string(data[k : k+int(l)])
			data = data[k+int(l):]
		}
		if len(data) != 0 {
			return fmt.Errorf("%w: %d trailing bytes after string column", ErrBadBatchEncoding, len(data))
		}
		return nil
	default:
		return fmt.Errorf("%w: unsupported column type %d", ErrBadBatchEncoding, typ)
	}
	return nil
}

// decodeDeltaInts decodes a zig-zag delta payload. Each row costs at least
// one byte, so the row count is bounded by the payload length before any
// allocation.
func decodeDeltaInts(col *Column, data []byte, n int) error {
	if n > len(data) {
		return fmt.Errorf("%w: delta payload too short for %d rows", ErrBadBatchEncoding, n)
	}
	col.ints = make([]int64, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		u, k := binary.Uvarint(data)
		if k <= 0 {
			return fmt.Errorf("%w: truncated delta row %d", ErrBadBatchEncoding, i)
		}
		data = data[k:]
		prev += unzigzag(u)
		col.ints[i] = prev
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after delta column", ErrBadBatchEncoding, len(data))
	}
	return nil
}

// decodeDictStrings decodes a dictionary payload, keeping the dictionary and
// the per-row codes on the column (batch.go) so operator fast paths can run
// on codes. The dictionary must be strictly sorted — the invariant the fast
// paths rely on — and every code in range; anything else is a corrupt frame.
func decodeDictStrings(col *Column, data []byte, n int) error {
	dictLen, k := binary.Uvarint(data)
	if k <= 0 || dictLen > uint64(len(data)-k) || dictLen > uint64(n) {
		return fmt.Errorf("%w: bad dictionary length", ErrBadBatchEncoding)
	}
	data = data[k:]
	dict := make([]string, dictLen)
	for i := range dict {
		l, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < l {
			return fmt.Errorf("%w: truncated dictionary entry %d", ErrBadBatchEncoding, i)
		}
		dict[i] = string(data[k : k+int(l)])
		if i > 0 && dict[i] <= dict[i-1] {
			return fmt.Errorf("%w: dictionary not strictly sorted at entry %d", ErrBadBatchEncoding, i)
		}
		data = data[k+int(l):]
	}
	if n > 0 && dictLen == 0 {
		return fmt.Errorf("%w: empty dictionary for %d rows", ErrBadBatchEncoding, n)
	}
	codes := make([]uint32, n)
	col.strs = make([]string, n)
	for i := 0; i < n; i++ {
		u, k := binary.Uvarint(data)
		if k <= 0 || u >= dictLen {
			return fmt.Errorf("%w: bad dictionary code at row %d", ErrBadBatchEncoding, i)
		}
		data = data[k:]
		codes[i] = uint32(u)
		col.strs[i] = dict[u]
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after dictionary column", ErrBadBatchEncoding, len(data))
	}
	col.dict = dict
	col.codes = codes
	return nil
}

// decodeRLEBools decodes a run-length bool payload.
func decodeRLEBools(col *Column, data []byte, n int) error {
	if len(data) < 1 {
		return fmt.Errorf("%w: truncated bool runs", ErrBadBatchEncoding)
	}
	val := data[0] != 0
	data = data[1:]
	nRuns, k := binary.Uvarint(data)
	if k <= 0 || nRuns > uint64(len(data)-k) {
		return fmt.Errorf("%w: truncated bool run count", ErrBadBatchEncoding)
	}
	data = data[k:]
	col.bools = make([]bool, n)
	row := uint64(0)
	for r := uint64(0); r < nRuns; r++ {
		l, k := binary.Uvarint(data)
		if k <= 0 {
			return fmt.Errorf("%w: truncated bool run %d", ErrBadBatchEncoding, r)
		}
		data = data[k:]
		if l > uint64(n)-row {
			return fmt.Errorf("%w: bool runs exceed row count", ErrBadBatchEncoding)
		}
		if val {
			for i := row; i < row+l; i++ {
				col.bools[i] = true
			}
		}
		row += l
		val = !val
	}
	if row != uint64(n) {
		return fmt.Errorf("%w: bool runs cover %d of %d rows", ErrBadBatchEncoding, row, n)
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after bool runs", ErrBadBatchEncoding, len(data))
	}
	return nil
}

// EncodedSizeV1 computes the exact byte length EncodeBatch would produce for
// b without encoding it — the "logical" spilled size the stores report next
// to the physical (possibly compressed) bytes actually written.
func EncodedSizeV1(b *ColumnBatch) int64 {
	size := int64(2) // magic + version
	size += uvarintLen(uint64(b.n)) + uvarintLen(uint64(len(b.cols)))
	for c := range b.cols {
		col := &b.cols[c]
		words := (b.n + 63) / 64
		if words > len(col.nulls) {
			words = len(col.nulls)
		}
		plen := uvarintLen(uint64(words)) + 8*int64(words)
		switch col.typ {
		case TypeInt, TypeTime, TypeFloat:
			plen += 8 * int64(b.n)
		case TypeBool:
			plen += int64((b.n + 7) / 8)
		case TypeString:
			for i := 0; i < b.n; i++ {
				l := len(col.strs[i])
				plen += uvarintLen(uint64(l)) + int64(l)
			}
		}
		size += 1 + uvarintLen(uint64(plen)) + plen
	}
	return size
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// Block layer: a minimal pure-Go LZ77 compressor
// ---------------------------------------------------------------------------

// The block format is a token stream:
//
//	control byte c with c&1 == 0: literal run of (c>>1)+1 bytes follows
//	control byte c with c&1 == 1: copy of (c>>1)+lzMinMatch bytes from
//	                              uvarint offset back in the output
//
// Literal runs cover 1..128 bytes per token, copies lzMinMatch..131+lzMinMatch-4
// bytes; longer stretches simply emit more tokens. The compressor is a greedy
// single-pass matcher over a 4-byte-prefix hash table — Snappy-shaped, far
// simpler, and entirely dependency-free.

const (
	lzMinMatch  = 4
	lzMaxToken  = 128 // max literals (and max copy length span) per token
	lzHashBits  = 14
	lzHashShift = 32 - lzHashBits
)

func lzHash(u uint32) uint32 {
	return (u * 2654435761) >> lzHashShift
}

func lzLoad32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// lzCompress appends the compressed form of src to dst. Output is always a
// valid token stream; callers compare sizes and keep the raw body when
// compression does not win.
func lzCompress(dst, src []byte) []byte {
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	emitLiterals := func(lit []byte) {
		for len(lit) > 0 {
			run := len(lit)
			if run > lzMaxToken {
				run = lzMaxToken
			}
			dst = append(dst, byte((run-1)<<1))
			dst = append(dst, lit[:run]...)
			lit = lit[run:]
		}
	}
	litStart := 0
	i := 0
	for i+lzMinMatch <= len(src) {
		h := lzHash(lzLoad32(src, i))
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || lzLoad32(src, int(cand)) != lzLoad32(src, i) {
			i++
			continue
		}
		// Extend the match as far as it goes.
		match := int(cand)
		length := lzMinMatch
		for i+length < len(src) && src[match+length] == src[i+length] {
			length++
		}
		emitLiterals(src[litStart:i])
		offset := i - match
		for length >= lzMinMatch {
			span := length
			if span > lzMaxToken+lzMinMatch-1 {
				span = lzMaxToken + lzMinMatch - 1
			}
			dst = append(dst, byte((span-lzMinMatch)<<1)|1)
			dst = binary.AppendUvarint(dst, uint64(offset))
			length -= span
			i += span
		}
		// A leftover tail shorter than a copy token's minimum stays at i and
		// is re-scanned by the outer loop (ultimately emitted as literals).
		litStart = i
	}
	emitLiterals(src[litStart:])
	return dst
}

// lzDecompress appends the decompressed token stream to dst, which must equal
// rawLen bytes on completion. Every read and copy is bounds-checked; malformed
// streams return ErrBadBatchEncoding.
func lzDecompress(dst, src []byte, rawLen int) ([]byte, error) {
	base := len(dst)
	for len(src) > 0 {
		c := src[0]
		src = src[1:]
		if c&1 == 0 {
			run := int(c>>1) + 1
			if run > len(src) {
				return nil, fmt.Errorf("%w: truncated literal run", ErrBadBatchEncoding)
			}
			if len(dst)-base+run > rawLen {
				return nil, fmt.Errorf("%w: block output exceeds declared size", ErrBadBatchEncoding)
			}
			dst = append(dst, src[:run]...)
			src = src[run:]
			continue
		}
		length := int(c>>1) + lzMinMatch
		off, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("%w: truncated copy offset", ErrBadBatchEncoding)
		}
		src = src[k:]
		if off == 0 || off > uint64(len(dst)-base) {
			return nil, fmt.Errorf("%w: copy offset out of range", ErrBadBatchEncoding)
		}
		if len(dst)-base+length > rawLen {
			return nil, fmt.Errorf("%w: block output exceeds declared size", ErrBadBatchEncoding)
		}
		// Byte-at-a-time copy: offsets shorter than the length overlap the
		// destination (the LZ idiom for runs).
		pos := len(dst) - int(off)
		for j := 0; j < length; j++ {
			dst = append(dst, dst[pos+j])
		}
	}
	if len(dst)-base != rawLen {
		return nil, fmt.Errorf("%w: block decoded %d of %d bytes", ErrBadBatchEncoding, len(dst)-base, rawLen)
	}
	return dst, nil
}
