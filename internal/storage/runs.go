package storage

// runs.go implements the sorted-run layer of the external merge sort: a
// RunStore accumulates the sorted runs one partition's sort produced (each
// run a ColumnBatch whose rows are already ordered), spills cold runs to a
// temp file through the batch codec when a memory budget is exceeded, and
// streams the k-way merge of all runs through a loser tree. Spilled runs are
// split into fixed-size frames so the merge restores at most one frame per
// run at a time: peak merge memory is bounded by runs × frame, not by the
// partition size.
//
// Stability contract: runs are merged in append order, ties go to the
// lower-numbered run, and rows within a run keep their order. Appending the
// stably-sorted chunks of a partition in input order therefore yields exactly
// the permutation a global stable sort of the partition would produce.

import (
	"fmt"
	"os"
	"sync"
)

// BatchRowCompare orders row ai of batch a against row bi of batch b. Both
// batches share one schema; the comparison must be a total order consistent
// with the sort the runs were built under.
type BatchRowCompare func(a *ColumnBatch, ai int, b *ColumnBatch, bi int) int

// runFrameRows is the row count of one encoded frame of a spilled run. The
// merge holds at most one decoded frame per run, so smaller frames trade
// decode calls for a lower resident bound during the merge.
const runFrameRows = 1024

// runFrame is one encoded frame of a spilled run in the store's temp file.
type runFrame struct {
	off  int64
	len  int64
	rows int
}

// runSlot is one sorted run: resident (batch != nil) or spilled into frames.
type runSlot struct {
	batch  *ColumnBatch
	mem    int64
	rows   int
	frames []runFrame
	cold   bool
}

// RunStore holds the sorted runs of one partition's external sort. Appends
// happen from the sorting task's goroutine; Merge streams the loser-tree
// merge of all runs once appending is done. The store is single-use: Close
// releases the spill file.
type RunStore struct {
	mu       sync.Mutex
	schema   *Schema
	budget   int64
	codec    CodecOptions
	spillDir string
	closed   bool
	runs     []*runSlot
	rows     int

	resident    int64
	maxResident int64

	file     *os.File
	fileSize int64

	spilledBatches  int64
	spilledBytes    int64
	logicalBytes    int64
	restoredBatches int64

	encodeBuf []byte
}

// NewRunStore returns an empty run store over schema. budget bounds the
// resident bytes of run data (BatchMemSize estimates); <= 0 keeps every run
// in memory and never touches disk.
func NewRunStore(schema *Schema, budget int64) (*RunStore, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: run store needs a schema", ErrEmptySchema)
	}
	return &RunStore{schema: schema, budget: budget}, nil
}

// SetCodec selects the batch codec spilled run frames are written with (the
// zero value is the raw v1 codec). Call before the first AppendRun; reads
// auto-detect the version.
func (s *RunStore) SetCodec(c CodecOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.codec = c
}

// SetSpillDir places the store's spill temp file in dir instead of the
// system temp directory ("" keeps os.TempDir()). Call before the first
// AppendRun; the directory must already exist.
func (s *RunStore) SetSpillDir(dir string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spillDir = dir
}

// Runs returns the number of sorted runs appended so far.
func (s *RunStore) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// Rows returns the total rows across all runs.
func (s *RunStore) Rows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// SpilledBatches returns the number of run frames written to the spill file.
func (s *RunStore) SpilledBatches() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilledBatches
}

// SpilledBytes returns the cumulative physical bytes written to the spill
// file (encoded, possibly compressed frame lengths).
func (s *RunStore) SpilledBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilledBytes
}

// SpilledLogicalBytes returns the cumulative logical bytes spilled — what the
// same frames would occupy under the raw v1 codec. Equal to SpilledBytes when
// compression is off.
func (s *RunStore) SpilledLogicalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logicalBytes
}

// FileBytes returns the bytes occupied by the append-only spill file — the
// store's physical-on-disk high-water mark.
func (s *RunStore) FileBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fileSize
}

// RestoredBatches returns the number of frames decoded back during merges.
func (s *RunStore) RestoredBatches() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restoredBatches
}

// MaxResidentBytes returns the high-water mark of the store's resident run
// bytes — runs awaiting their merge plus the frames the merge held decoded.
func (s *RunStore) MaxResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxResident
}

// AppendRun seals b — whose rows must already be sorted — as the next run.
// The batch must not be mutated afterwards. Under budget pressure the oldest
// resident runs (possibly b itself) are spilled into frames before AppendRun
// returns.
func (s *RunStore) AppendRun(b *ColumnBatch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := &runSlot{batch: b, mem: BatchMemSize(b), rows: b.Len()}
	s.runs = append(s.runs, slot)
	s.rows += slot.rows
	s.noteResidentLocked(slot.mem)
	if s.budget > 0 {
		for _, r := range s.runs {
			if s.resident <= s.budget {
				break
			}
			if !r.cold {
				if err := s.spillRunLocked(r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// noteResidentLocked adjusts the resident total and tracks its high water.
// Caller holds s.mu.
func (s *RunStore) noteResidentLocked(delta int64) {
	s.resident += delta
	if s.resident > s.maxResident {
		s.maxResident = s.resident
	}
}

// spillRunLocked encodes one resident run into runFrameRows-sized frames and
// releases its memory. Caller holds s.mu.
func (s *RunStore) spillRunLocked(slot *runSlot) error {
	if s.closed {
		return fmt.Errorf("storage: spill to closed run store")
	}
	if s.file == nil {
		f, err := os.CreateTemp(s.spillDir, "toreador-runs-*.bin")
		if err != nil {
			return fmt.Errorf("storage: create run spill file: %w", err)
		}
		s.file = f
	}
	for off := 0; off < slot.rows; off += runFrameRows {
		end := off + runFrameRows
		if end > slot.rows {
			end = slot.rows
		}
		frame := slot.batch
		if off > 0 || end < slot.rows {
			// Only multi-frame runs pay a gather into the frame window; a run
			// that fits one frame encodes its batch directly.
			frame = NewColumnBatch(s.schema, end-off)
			for i := off; i < end; i++ {
				frame.AppendRowFrom(slot.batch, i)
			}
		}
		s.encodeBuf = EncodeBatchOpts(s.encodeBuf[:0], frame, s.codec)
		if _, err := s.file.WriteAt(s.encodeBuf, s.fileSize); err != nil {
			return fmt.Errorf("storage: write run spill file: %w", err)
		}
		fl := int64(len(s.encodeBuf))
		logical := fl
		if s.codec.Compress {
			logical = EncodedSizeV1(frame)
		}
		slot.frames = append(slot.frames, runFrame{off: s.fileSize, len: fl, rows: end - off})
		s.fileSize += fl
		s.spilledBatches++
		s.spilledBytes += fl
		s.logicalBytes += logical
	}
	slot.cold = true
	slot.batch = nil
	s.resident -= slot.mem
	return nil
}

// restoreFrame decodes one spilled frame and accounts its resident bytes
// until releaseFrame is called.
func (s *RunStore) restoreFrame(f runFrame) (*ColumnBatch, int64, error) {
	buf := make([]byte, f.len)
	if _, err := s.file.ReadAt(buf, f.off); err != nil {
		return nil, 0, fmt.Errorf("storage: read run spill file: %w", err)
	}
	b, err := DecodeBatch(s.schema, buf)
	if err != nil {
		return nil, 0, err
	}
	mem := BatchMemSize(b)
	s.mu.Lock()
	s.restoredBatches++
	s.noteResidentLocked(mem)
	s.mu.Unlock()
	return b, mem, nil
}

// releaseFrame returns a restored frame's bytes to the accounting.
func (s *RunStore) releaseFrame(mem int64) {
	s.mu.Lock()
	s.resident -= mem
	s.mu.Unlock()
}

// releaseRun drops a fully-merged resident run.
func (s *RunStore) releaseRun(slot *runSlot) {
	s.mu.Lock()
	if !slot.cold && slot.batch != nil {
		slot.batch = nil
		s.resident -= slot.mem
	}
	s.mu.Unlock()
}

// runCursor streams one run during the merge: a resident run iterates its
// batch in place; a spilled run decodes one frame at a time.
type runCursor struct {
	s    *RunStore
	slot *runSlot
	// batch/row is the current head of the run.
	batch *ColumnBatch
	row   int
	// next is the index of the next frame to restore (cold runs only).
	next     int
	frameMem int64
	done     bool
}

func (c *runCursor) init() error {
	if c.slot.rows == 0 {
		c.done = true
		return nil
	}
	if !c.slot.cold {
		c.batch = c.slot.batch
		return nil
	}
	return c.loadFrame()
}

func (c *runCursor) loadFrame() error {
	if c.frameMem > 0 {
		c.s.releaseFrame(c.frameMem)
		c.frameMem = 0
	}
	if c.next >= len(c.slot.frames) {
		c.done = true
		c.batch = nil
		return nil
	}
	b, mem, err := c.s.restoreFrame(c.slot.frames[c.next])
	if err != nil {
		return err
	}
	c.batch, c.frameMem, c.row = b, mem, 0
	c.next++
	return nil
}

// advance moves the cursor past its current row.
func (c *runCursor) advance() error {
	c.row++
	if c.row < c.batch.Len() {
		return nil
	}
	if c.slot.cold {
		return c.loadFrame()
	}
	c.done = true
	c.batch = nil
	c.s.releaseRun(c.slot)
	return nil
}

// close releases whatever the cursor still holds (early merge abort).
func (c *runCursor) close() {
	if c.frameMem > 0 {
		c.s.releaseFrame(c.frameMem)
		c.frameMem = 0
	}
}

// loserTree is a tournament tree over k run cursors: node[0] holds the
// current overall winner, node[1..k-1] hold the losers of the internal
// matches. After the winner advances, one replay along its leaf-to-root path
// restores the invariant in O(log k) comparisons.
type loserTree struct {
	k       int
	node    []int
	cursors []*runCursor
	cmp     BatchRowCompare
}

func newLoserTree(cursors []*runCursor, cmp BatchRowCompare) *loserTree {
	k := len(cursors)
	t := &loserTree{k: k, node: make([]int, k), cursors: cursors, cmp: cmp}
	for i := range t.node {
		t.node[i] = -1
	}
	for i := k - 1; i >= 0; i-- {
		t.replay(i)
	}
	return t
}

// beats reports whether cursor a's head row is emitted before cursor b's:
// exhausted cursors lose to live ones, and ties go to the lower run index,
// which is what makes the merge stable.
func (t *loserTree) beats(a, b int) bool {
	ca, cb := t.cursors[a], t.cursors[b]
	if ca.done {
		return false
	}
	if cb.done {
		return true
	}
	if c := t.cmp(ca.batch, ca.row, cb.batch, cb.row); c != 0 {
		return c < 0
	}
	return a < b
}

// replay re-plays leaf i's matches up to the root: at each internal node the
// arriving contestant plays the parked loser, the loser stays, the winner
// continues up. During the initial build the first contestant to reach an
// empty node parks there and stops — its match is played when the sibling
// subtree's winner comes through — which fills all k-1 internal nodes after
// the k build replays and leaves the overall winner at node[0].
func (t *loserTree) replay(i int) {
	winner := i
	for n := (i + t.k) / 2; n >= 1; n /= 2 {
		if t.node[n] < 0 {
			t.node[n] = winner
			return
		}
		if t.beats(t.node[n], winner) {
			t.node[n], winner = winner, t.node[n]
		}
	}
	t.node[0] = winner
}

// Merge streams the k-way merge of every run in sorted order, emitting output
// batches of at most outRows rows. The merge is stable across runs (ties go
// to the earlier run) and within runs (rows keep their order). The store must
// not be appended to afterwards.
func (s *RunStore) Merge(cmp BatchRowCompare, outRows int, emit func(*ColumnBatch) error) error {
	s.mu.Lock()
	runs := s.runs
	remaining := s.rows
	s.mu.Unlock()
	if remaining == 0 {
		return nil
	}
	if outRows < 1 {
		outRows = remaining
	}
	cursors := make([]*runCursor, len(runs))
	for i, slot := range runs {
		cursors[i] = &runCursor{s: s, slot: slot}
		if err := cursors[i].init(); err != nil {
			return err
		}
	}
	defer func() {
		for _, c := range cursors {
			c.close()
		}
	}()
	lt := newLoserTree(cursors, cmp)
	newOut := func() *ColumnBatch {
		n := outRows
		if remaining < n {
			n = remaining
		}
		return NewColumnBatch(s.schema, n)
	}
	out := newOut()
	for remaining > 0 {
		w := lt.node[0]
		c := cursors[w]
		if c.done {
			return fmt.Errorf("storage: run merge exhausted with %d rows remaining", remaining)
		}
		out.AppendRowFrom(c.batch, c.row)
		remaining--
		if err := c.advance(); err != nil {
			return err
		}
		lt.replay(w)
		if out.Len() >= outRows || remaining == 0 {
			if err := emit(out); err != nil {
				return err
			}
			out = newOut()
		}
	}
	return nil
}

// Close releases the spill file (if one was created). Idempotent: a second
// call is a no-op, never a double remove. The store must not be used for
// appends afterwards.
func (s *RunStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.file == nil {
		return nil
	}
	name := s.file.Name()
	err := s.file.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	s.file = nil
	return err
}
