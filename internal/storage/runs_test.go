package storage

import (
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"
)

// runsTestSchema is the two-column schema the run-store tests sort on: a
// duplicate-heavy key plus a unique id that makes stability observable.
func runsTestSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{Name: "k", Type: TypeInt, Nullable: true},
		Field{Name: "id", Type: TypeInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// cmpByK orders rows by column 0 only (nulls first), so duplicate keys expose
// merge stability through the untouched id column.
func cmpByK(a *ColumnBatch, ai int, b *ColumnBatch, bi int) int {
	return CompareValues(a.Value(ai, 0), b.Value(bi, 0))
}

// buildRuns splits rows into sorted chunks of chunkRows and appends each as a
// run, returning the reference: the stable sort of all rows.
func buildRuns(t *testing.T, s *RunStore, schema *Schema, rows []Row, chunkRows int) []Row {
	t.Helper()
	for off := 0; off < len(rows); off += chunkRows {
		end := off + chunkRows
		if end > len(rows) {
			end = len(rows)
		}
		chunk := append([]Row(nil), rows[off:end]...)
		sort.SliceStable(chunk, func(i, j int) bool {
			return CompareValues(chunk[i][0], chunk[j][0]) < 0
		})
		b, err := BatchFromRows(schema, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AppendRun(b); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]Row(nil), rows...)
	sort.SliceStable(want, func(i, j int) bool {
		return CompareValues(want[i][0], want[j][0]) < 0
	})
	return want
}

func mergeAll(t *testing.T, s *RunStore, outRows int) []Row {
	t.Helper()
	var got []Row
	err := s.Merge(cmpByK, outRows, func(b *ColumnBatch) error {
		got = append(got, b.Rows()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func rowsEqual(t *testing.T, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("merged %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if CompareValues(got[i][0], want[i][0]) != 0 || CompareValues(got[i][1], want[i][1]) != 0 {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRunStoreMergeMatchesStableSort drives random run counts, run sizes and
// duplicate-heavy keys (with nulls) through resident and fully-spilled stores
// and requires the loser-tree merge to reproduce a global stable sort.
func TestRunStoreMergeMatchesStableSort(t *testing.T) {
	schema := runsTestSchema(t)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5000)
		rows := make([]Row, n)
		for i := range rows {
			var k Value
			if rng.Intn(10) > 0 {
				k = int64(rng.Intn(7)) // heavy duplicates force tie-breaking
			}
			rows[i] = Row{k, int64(i)}
		}
		chunk := 1 + rng.Intn(700)
		for _, budget := range []int64{0, 1} {
			s, err := NewRunStore(schema, budget)
			if err != nil {
				t.Fatal(err)
			}
			want := buildRuns(t, s, schema, rows, chunk)
			got := mergeAll(t, s, 1+rng.Intn(600))
			rowsEqual(t, got, want)
			if budget > 0 && n > 0 && s.SpilledBatches() == 0 {
				t.Errorf("seed %d: one-byte budget never spilled a run", seed)
			}
			if budget == 0 && s.SpilledBatches() != 0 {
				t.Errorf("seed %d: unlimited budget must not spill", seed)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestRunStoreSingleRunAndEmpty covers the degenerate merges: no runs at all
// and a single run (k=1 loser tree).
func TestRunStoreSingleRunAndEmpty(t *testing.T) {
	schema := runsTestSchema(t)
	s, err := NewRunStore(schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := mergeAll(t, s, 10); len(got) != 0 {
		t.Fatalf("empty store merged %d rows", len(got))
	}
	if err := s.AppendRun(nil); err != nil {
		t.Fatal(err)
	}
	if s.Runs() != 0 {
		t.Fatal("nil/empty runs must not be recorded")
	}
	rows := []Row{{int64(1), int64(0)}, {int64(2), int64(1)}, {int64(2), int64(2)}}
	b, err := BatchFromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRun(b); err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, mergeAll(t, s, 2), rows)
}

// TestRunStoreBudgetBoundsResidency proves the external-sort memory claim:
// with a budget small enough to spill every run, the store's resident
// high-water mark stays under runs × the largest run's footprint — the merge
// holds frames, never whole partitions.
func TestRunStoreBudgetBoundsResidency(t *testing.T) {
	schema := runsTestSchema(t)
	s, err := NewRunStore(schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const chunk = 2048
	rows := make([]Row, 16*chunk)
	for i := range rows {
		rows[i] = Row{int64(i % 97), int64(i)}
	}
	var maxRunMem int64
	for off := 0; off < len(rows); off += chunk {
		b, err := BatchFromRows(schema, rows[off:off+chunk])
		if err != nil {
			t.Fatal(err)
		}
		if m := BatchMemSize(b); m > maxRunMem {
			maxRunMem = m
		}
		if err := s.AppendRun(b); err != nil {
			t.Fatal(err)
		}
	}
	got := mergeAll(t, s, chunk)
	if len(got) != len(rows) {
		t.Fatalf("merged %d rows, want %d", len(got), len(rows))
	}
	peak, runs := s.MaxResidentBytes(), int64(s.Runs())
	if peak == 0 {
		t.Fatal("merge must account restored frame bytes")
	}
	if peak > runs*maxRunMem {
		t.Errorf("peak resident %d exceeds runs(%d) × chunk(%d)", peak, runs, maxRunMem)
	}
	// The frame split buys real headroom: one 1024-row frame per run, not one
	// whole 2048-row run per run.
	if half := runs * maxRunMem / 2; peak > half+maxRunMem {
		t.Errorf("peak resident %d suggests whole runs were restored (frame bound %d)", peak, half+maxRunMem)
	}
	if s.RestoredBatches() == 0 {
		t.Error("spilled merge must restore frames")
	}
}

// TestRunStoreCloseRemovesSpillFile checks the temp file lifecycle.
func TestRunStoreCloseRemovesSpillFile(t *testing.T) {
	schema := runsTestSchema(t)
	s, err := NewRunStore(schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BatchFromRows(schema, []Row{{int64(1), int64(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRun(b); err != nil {
		t.Fatal(err)
	}
	if s.file == nil {
		t.Fatal("budgeted append must open a spill file")
	}
	name := s.file.Name()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Errorf("spill file %s must be removed on Close", name)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close must be a no-op: %v", err)
	}
}

// TestNewRunStoreRequiresSchema pins the constructor contract.
func TestNewRunStoreRequiresSchema(t *testing.T) {
	if _, err := NewRunStore(nil, 0); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("nil schema must be rejected, got %v", err)
	}
}
