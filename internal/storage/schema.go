// Package storage implements the storage substrate of the simulated Big Data
// platform: typed schemas, rows, columnar batches (typed column vectors with
// null bitmaps), in-memory tables partitioned into blocks, CSV/JSON codecs,
// and a dataset catalog.
//
// The TOREADOR platform assumes data sources registered with the platform and
// described by a representation model; this package plays that role. All data
// is held in memory — the point of the substrate is to exercise the same code
// paths a distributed store would (schema validation, partitioning,
// serialization), not to persist terabytes.
package storage

import (
	"errors"
	"fmt"
	"strings"
)

// FieldType enumerates the value types supported by the engine.
type FieldType int

const (
	// TypeUnknown is the zero value and is never valid in a schema.
	TypeUnknown FieldType = iota
	// TypeString holds UTF-8 text.
	TypeString
	// TypeInt holds 64-bit signed integers.
	TypeInt
	// TypeFloat holds 64-bit floating point numbers.
	TypeFloat
	// TypeBool holds booleans.
	TypeBool
	// TypeTime holds timestamps encoded as Unix milliseconds (int64).
	TypeTime
)

// String implements fmt.Stringer.
func (t FieldType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeTime:
		return "time"
	default:
		return "unknown"
	}
}

// ParseFieldType converts a textual type name into a FieldType.
func ParseFieldType(s string) (FieldType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "text", "varchar":
		return TypeString, nil
	case "int", "integer", "long":
		return TypeInt, nil
	case "float", "double", "real":
		return TypeFloat, nil
	case "bool", "boolean":
		return TypeBool, nil
	case "time", "timestamp", "datetime":
		return TypeTime, nil
	default:
		return TypeUnknown, fmt.Errorf("storage: unknown field type %q", s)
	}
}

// Sensitivity classifies how privacy-sensitive a field is. The compliance
// engine consumes these classifications when evaluating regulatory policies.
type Sensitivity int

const (
	// Public data carries no restriction.
	Public Sensitivity = iota
	// Internal data may be processed but not exposed outside the platform.
	Internal
	// Personal data identifies or relates to a natural person (PII).
	Personal
	// Sensitive data is special-category personal data (health, finance…).
	Sensitive
)

// String implements fmt.Stringer.
func (s Sensitivity) String() string {
	switch s {
	case Public:
		return "public"
	case Internal:
		return "internal"
	case Personal:
		return "personal"
	case Sensitive:
		return "sensitive"
	default:
		return fmt.Sprintf("sensitivity(%d)", int(s))
	}
}

// Field describes one column of a schema.
type Field struct {
	// Name is the column name; unique within a schema.
	Name string
	// Type is the value type of the column.
	Type FieldType
	// Sensitivity classifies the column for compliance purposes.
	Sensitivity Sensitivity
	// Nullable reports whether the column accepts null values.
	Nullable bool
}

// Schema is an ordered list of fields. Schemas are immutable after creation;
// derive new schemas with Project/Append/Rename.
type Schema struct {
	fields []Field
	index  map[string]int
}

// Common schema construction errors.
var (
	ErrEmptySchema    = errors.New("storage: schema must contain at least one field")
	ErrDuplicateField = errors.New("storage: duplicate field name")
	ErrUnknownField   = errors.New("storage: unknown field")
	ErrTypeMismatch   = errors.New("storage: value type mismatch")
)

// NewSchema builds a schema from the given fields. Field names must be
// non-empty and unique; field types must be valid.
func NewSchema(fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, ErrEmptySchema
	}
	s := &Schema{
		fields: make([]Field, len(fields)),
		index:  make(map[string]int, len(fields)),
	}
	copy(s.fields, fields)
	for i, f := range s.fields {
		if strings.TrimSpace(f.Name) == "" {
			return nil, fmt.Errorf("storage: field %d has empty name", i)
		}
		if f.Type == TypeUnknown {
			return nil, fmt.Errorf("storage: field %q has unknown type", f.Name)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateField, f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error; intended for statically
// known schemas in generators and tests.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// IndexOf returns the position of the named field, or -1 when absent.
func (s *Schema) IndexOf(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Has reports whether the schema contains the named field.
func (s *Schema) Has(name string) bool { return s.IndexOf(name) >= 0 }

// FieldByName returns the named field.
func (s *Schema) FieldByName(name string) (Field, error) {
	i := s.IndexOf(name)
	if i < 0 {
		return Field{}, fmt.Errorf("%w: %q", ErrUnknownField, name)
	}
	return s.fields[i], nil
}

// Names returns the ordered field names.
func (s *Schema) Names() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// Project returns a new schema containing only the named fields, in the given
// order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, ErrEmptySchema
	}
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		f, err := s.FieldByName(n)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return NewSchema(fields...)
}

// Append returns a new schema with extra fields appended.
func (s *Schema) Append(fields ...Field) (*Schema, error) {
	all := make([]Field, 0, len(s.fields)+len(fields))
	all = append(all, s.fields...)
	all = append(all, fields...)
	return NewSchema(all...)
}

// Rename returns a new schema with field old renamed to new.
func (s *Schema) Rename(oldName, newName string) (*Schema, error) {
	fields := s.Fields()
	i := s.IndexOf(oldName)
	if i < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownField, oldName)
	}
	fields[i].Name = newName
	return NewSchema(fields...)
}

// Equal reports whether two schemas have the same fields (name, type,
// sensitivity, nullability) in the same order.
func (s *Schema) Equal(other *Schema) bool {
	if s == nil || other == nil {
		return s == other
	}
	if len(s.fields) != len(other.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != other.fields[i] {
			return false
		}
	}
	return true
}

// MaxSensitivity returns the highest sensitivity level among the fields.
func (s *Schema) MaxSensitivity() Sensitivity {
	maxLevel := Public
	for _, f := range s.fields {
		if f.Sensitivity > maxLevel {
			maxLevel = f.Sensitivity
		}
	}
	return maxLevel
}

// SensitiveFields returns the names of all fields at or above the given
// sensitivity level.
func (s *Schema) SensitiveFields(min Sensitivity) []string {
	var out []string
	for _, f := range s.fields {
		if f.Sensitivity >= min {
			out = append(out, f.Name)
		}
	}
	return out
}

// String renders a readable schema description.
func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = fmt.Sprintf("%s:%s", f.Name, f.Type)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
