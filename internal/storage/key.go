package storage

// key.go implements the binary key encoder used by the dataflow engine's
// shuffle machinery. Wide operators (group-by, join, distinct, sort-range
// partitioning) key every input row; rendering those keys with AsString plus
// strings.Join allocates two strings per row and dominated shuffle profiles.
// A KeyEncoder instead appends a type-tagged, self-delimiting binary encoding
// of the key columns into a reusable buffer, and can reduce it to a 64-bit
// FNV-1a hash without allocating at all.
//
// The encoding is injective: two rows produce the same bytes iff their key
// columns hold equal values of the same dynamic type. Because schemas are
// typed per column, this matches the engine's equality semantics; unlike the
// old string rendering it does not conflate int64(5) with "5" across
// differently-typed columns.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Key encoding type tags. Each encoded value starts with its tag; fixed-width
// types follow with a fixed payload, variable-width types with a uvarint
// length prefix, which keeps the concatenation of several values
// self-delimiting (no separator byte that string keys would need escaping
// for).
const (
	keyTagNull byte = iota
	keyTagString
	keyTagInt
	keyTagFloat
	keyTagBool
	keyTagOther
)

// FNV-1a 64-bit parameters (FNV is also what HashPartition uses, in its
// 32-bit string form).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// HashBytes64 returns the 64-bit FNV-1a hash of b.
func HashBytes64(b []byte) uint64 {
	h := fnvOffset64
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// HashString64 returns the 64-bit FNV-1a hash of s without converting it to a
// byte slice.
func HashString64(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// PartitionOfHash maps a 64-bit hash onto one of n partitions.
func PartitionOfHash(h uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(h % uint64(n))
}

// floatKeyBits returns the bit pattern keyed for a float value. Negative zero
// is normalised to positive zero first: -0.0 == 0.0 under Go equality and
// CompareValues, but their raw Float64bits differ, and keying the raw bits
// used to split the two values into distinct groups (group-by/distinct/join)
// while sort treated them as one value. NaN deliberately stays keyed by its
// raw bits: CompareValues has no total order for NaN (it reports NaN "equal"
// to every float), so bitwise identity is the only grouping that is at least
// self-consistent.
func floatKeyBits(f float64) uint64 {
	if f == 0 {
		f = 0
	}
	return math.Float64bits(f)
}

// AppendKeyValue appends the binary key encoding of a single value to dst and
// returns the extended slice.
func AppendKeyValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, keyTagNull)
	case string:
		dst = append(dst, keyTagString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case int64:
		dst = append(dst, keyTagInt)
		return binary.BigEndian.AppendUint64(dst, uint64(x))
	case float64:
		dst = append(dst, keyTagFloat)
		return binary.BigEndian.AppendUint64(dst, floatKeyBits(x))
	case bool:
		if x {
			return append(dst, keyTagBool, 1)
		}
		return append(dst, keyTagBool, 0)
	default:
		// Unknown dynamic types never pass ValidateRow, but keep the encoding
		// total rather than panicking on hand-built rows.
		s := fmt.Sprintf("%v", x)
		dst = append(dst, keyTagOther)
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	}
}

// KeyEncoder encodes a fixed set of key columns of rows sharing one schema.
// The zero value is not usable; construct with NewKeyEncoder. An encoder owns
// a reusable buffer and is NOT safe for concurrent use — clone one per task
// with Clone (clones share only the immutable column indices).
type KeyEncoder struct {
	// idx holds the key column positions; nil means "every column".
	idx []int
	buf []byte
}

// NewKeyEncoder returns an encoder for the named columns of schema s. With no
// columns the whole row is the key. Unknown columns are rejected here, at
// plan/build time, instead of panicking row-by-row during execution.
func NewKeyEncoder(s *Schema, cols ...string) (*KeyEncoder, error) {
	if len(cols) == 0 {
		return &KeyEncoder{}, nil
	}
	if s == nil {
		return nil, fmt.Errorf("%w: key encoder needs a schema", ErrEmptySchema)
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := s.IndexOf(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: key column %q not in schema %s", ErrUnknownField, c, s)
		}
		idx[i] = j
	}
	return &KeyEncoder{idx: idx}, nil
}

// Clone returns an encoder over the same columns with its own buffer, for use
// from another goroutine.
func (e *KeyEncoder) Clone() *KeyEncoder { return &KeyEncoder{idx: e.idx} }

// Columns returns the key's column positions, nil when the whole row is the
// key. Read-only; consumers use it to recognise single-column keys eligible
// for dictionary-code fast paths.
func (e *KeyEncoder) Columns() []int { return e.idx }

// AppendKey appends the encoded key of r to dst and returns the extended
// slice.
func (e *KeyEncoder) AppendKey(dst []byte, r Row) []byte {
	if e.idx == nil {
		for _, v := range r {
			dst = AppendKeyValue(dst, v)
		}
		return dst
	}
	for _, j := range e.idx {
		var v Value
		if j < len(r) {
			v = r[j]
		}
		dst = AppendKeyValue(dst, v)
	}
	return dst
}

// Key encodes the key of r into the encoder's reusable buffer. The returned
// slice is only valid until the next Key/Hash call; callers that retain it
// must copy (string(key) — Go map index expressions over string(key) do not
// allocate).
func (e *KeyEncoder) Key(r Row) []byte {
	e.buf = e.AppendKey(e.buf[:0], r)
	return e.buf
}

// Hash returns the 64-bit FNV-1a hash of r's encoded key, reusing the
// encoder's buffer (steady-state allocation free).
func (e *KeyEncoder) Hash(r Row) uint64 {
	return HashBytes64(e.Key(r))
}

// appendBatchValue appends the key encoding of cell (row, col) of a columnar
// batch, reading the typed vector directly. The bytes produced are identical
// to AppendKeyValue over the equivalent boxed value, so row-encoded and
// batch-encoded keys compare and hash interchangeably.
func appendBatchValue(dst []byte, b *ColumnBatch, row, col int) []byte {
	if col < 0 || col >= b.Width() {
		return append(dst, keyTagNull)
	}
	c := b.Column(col)
	if c.Null(row) {
		return append(dst, keyTagNull)
	}
	switch c.Type() {
	case TypeInt, TypeTime:
		dst = append(dst, keyTagInt)
		return binary.BigEndian.AppendUint64(dst, uint64(c.Int(row)))
	case TypeFloat:
		dst = append(dst, keyTagFloat)
		return binary.BigEndian.AppendUint64(dst, floatKeyBits(c.Float(row)))
	case TypeString:
		s := c.Str(row)
		dst = append(dst, keyTagString)
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	case TypeBool:
		if c.Bool(row) {
			return append(dst, keyTagBool, 1)
		}
		return append(dst, keyTagBool, 0)
	default:
		return append(dst, keyTagNull)
	}
}

// AppendBatchKey appends the encoded key of batch row i to dst, reading the
// key columns from the typed vectors without materialising a Row.
func (e *KeyEncoder) AppendBatchKey(dst []byte, b *ColumnBatch, i int) []byte {
	if e.idx == nil {
		for col := 0; col < b.Width(); col++ {
			dst = appendBatchValue(dst, b, i, col)
		}
		return dst
	}
	for _, col := range e.idx {
		dst = appendBatchValue(dst, b, i, col)
	}
	return dst
}

// BatchKey encodes the key of batch row i into the encoder's reusable buffer.
// Like Key, the returned slice is only valid until the next Key/Hash call.
func (e *KeyEncoder) BatchKey(b *ColumnBatch, i int) []byte {
	e.buf = e.AppendBatchKey(e.buf[:0], b, i)
	return e.buf
}

// BatchHash returns the 64-bit FNV-1a hash of batch row i's encoded key,
// reusing the encoder's buffer.
func (e *KeyEncoder) BatchHash(b *ColumnBatch, i int) uint64 {
	return HashBytes64(e.BatchKey(b, i))
}
