package storage

import (
	"reflect"
	"strings"
	"testing"
)

func batchSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Field{Name: "id", Type: TypeInt},
		Field{Name: "score", Type: TypeFloat, Nullable: true},
		Field{Name: "name", Type: TypeString},
		Field{Name: "ok", Type: TypeBool, Nullable: true},
		Field{Name: "at", Type: TypeTime, Nullable: true},
	)
}

func batchRows() []Row {
	return []Row{
		{int64(1), 1.5, "a", true, int64(1000)},
		{int64(2), nil, "b", false, nil},
		{int64(3), -2.25, "c", nil, int64(3000)},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	schema := batchSchema(t)
	rows := batchRows()
	b, err := BatchFromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(rows) || b.Width() != schema.Len() {
		t.Fatalf("batch %dx%d, want %dx%d", b.Len(), b.Width(), len(rows), schema.Len())
	}
	for i, want := range rows {
		if got := b.Row(i); !reflect.DeepEqual(got, want) {
			t.Errorf("Row(%d) = %v, want %v", i, got, want)
		}
	}
	if got := b.Rows(); !reflect.DeepEqual(got, rows) {
		t.Errorf("Rows() = %v, want %v", got, rows)
	}
}

func TestBatchValidation(t *testing.T) {
	schema := batchSchema(t)
	cases := []struct {
		name string
		row  Row
		want string
	}{
		{"arity", Row{int64(1)}, "values, schema has"},
		{"type", Row{"one", 1.5, "a", true, int64(1)}, "expects int"},
		{"null", Row{nil, 1.5, "a", true, int64(1)}, "not nullable"},
	}
	for _, tc := range cases {
		b := NewColumnBatch(schema, 1)
		err := b.AppendRow(tc.row)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: AppendRow error = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestBatchTypedAccessors(t *testing.T) {
	schema := batchSchema(t)
	b, err := BatchFromRows(schema, batchRows())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := b.FloatAt(0, 1); !ok || v != 1.5 {
		t.Errorf("FloatAt(0,1) = %v,%v", v, ok)
	}
	if _, ok := b.FloatAt(1, 1); ok {
		t.Error("FloatAt over null must report !ok")
	}
	if v, ok := b.FloatAt(0, 0); !ok || v != 1 {
		t.Errorf("FloatAt over int = %v,%v", v, ok)
	}
	if v, ok := b.IntAt(2, 4); !ok || v != 3000 {
		t.Errorf("IntAt(2,4) = %v,%v", v, ok)
	}
	if v, ok := b.BoolAt(0, 3); !ok || !v {
		t.Errorf("BoolAt(0,3) = %v,%v", v, ok)
	}
	if got := b.StringAt(1, 2); got != "b" {
		t.Errorf("StringAt(1,2) = %q", got)
	}
	if got := b.StringAt(0, 0); got != "1" {
		t.Errorf("StringAt over int = %q", got)
	}
	if !b.NullAt(1, 1) || b.NullAt(0, 0) || !b.NullAt(0, 99) {
		t.Error("NullAt mismatch")
	}
	// Accessor semantics must match the boxed As* helpers cell by cell.
	for i := 0; i < b.Len(); i++ {
		for c := 0; c < b.Width(); c++ {
			v := b.Value(i, c)
			if f, ok := AsFloat(v); true {
				if gf, gok := b.FloatAt(i, c); gf != f || gok != ok {
					t.Errorf("FloatAt(%d,%d) = %v,%v want %v,%v", i, c, gf, gok, f, ok)
				}
			}
			if s := AsString(v); b.StringAt(i, c) != s {
				t.Errorf("StringAt(%d,%d) = %q want %q", i, c, b.StringAt(i, c), s)
			}
		}
	}
}

func TestBatchGatherProjectHead(t *testing.T) {
	schema := batchSchema(t)
	rows := batchRows()
	b, err := BatchFromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Gather([]int32{2, 0})
	if g.Len() != 2 || !reflect.DeepEqual(g.Row(0), rows[2]) || !reflect.DeepEqual(g.Row(1), rows[0]) {
		t.Errorf("Gather rows = %v / %v", g.Row(0), g.Row(1))
	}
	projected, err := schema.Project("name", "id")
	if err != nil {
		t.Fatal(err)
	}
	p := b.ProjectCols(projected, []int{2, 0})
	if p.Len() != 3 || !reflect.DeepEqual(p.Row(1), Row{"b", int64(2)}) {
		t.Errorf("ProjectCols row = %v", p.Row(1))
	}
	h := b.Head(2)
	if h.Len() != 2 || !reflect.DeepEqual(h.Rows(), rows[:2]) {
		t.Errorf("Head rows = %v", h.Rows())
	}
	if b.Head(10) != b {
		t.Error("Head beyond length must return the batch itself")
	}
}

func TestBatchAppendJoined(t *testing.T) {
	left := MustSchema(Field{Name: "k", Type: TypeInt}, Field{Name: "v", Type: TypeFloat})
	right := MustSchema(Field{Name: "name", Type: TypeString, Nullable: true})
	out := MustSchema(
		Field{Name: "k", Type: TypeInt},
		Field{Name: "v", Type: TypeFloat},
		Field{Name: "name", Type: TypeString, Nullable: true},
	)
	lb, err := BatchFromRows(left, []Row{{int64(1), 2.5}, {int64(2), 3.5}})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := BatchFromRows(right, []Row{{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	o := NewColumnBatch(out, 2)
	o.AppendJoined(lb, 1, rb, 0)
	o.AppendNullExtended(lb, 0)
	want := []Row{{int64(2), 3.5, "x"}, {int64(1), 2.5, nil}}
	if !reflect.DeepEqual(o.Rows(), want) {
		t.Errorf("joined rows = %v, want %v", o.Rows(), want)
	}
}

// TestBatchKeyEncoding verifies that batch-encoded keys are byte-identical to
// row-encoded keys, so hashes and map keys computed on either side of a
// shuffle agree.
func TestBatchKeyEncoding(t *testing.T) {
	schema := batchSchema(t)
	rows := batchRows()
	b, err := BatchFromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, cols := range [][]string{nil, {"id"}, {"name", "score"}, {"ok", "at", "id"}} {
		enc, err := NewKeyEncoder(schema, cols...)
		if err != nil {
			t.Fatal(err)
		}
		check := enc.Clone()
		for i, r := range rows {
			rowKey := append([]byte(nil), enc.Key(r)...)
			batchKey := check.BatchKey(b, i)
			if string(rowKey) != string(batchKey) {
				t.Errorf("cols %v row %d: row key %x != batch key %x", cols, i, rowKey, batchKey)
			}
			if enc.Hash(r) != check.BatchHash(b, i) {
				t.Errorf("cols %v row %d: hash mismatch", cols, i)
			}
		}
	}
}
