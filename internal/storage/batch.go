package storage

// batch.go implements the columnar batch layer: a partition of rows stored as
// typed column vectors ([]int64, []float64, []string, []bool) with null
// bitmaps instead of a slice of boxed []any rows. The dataflow engine uses
// ColumnBatch as its internal partition representation when vectorized
// execution is enabled: narrow kernels operate column-at-a-time, user
// closures read cells through zero-copy per-row views (no Row is
// materialised), and the shuffle machinery moves rows by batch index with
// typed copies instead of boxed Row pointers.
//
// A ColumnBatch is append-only while it is being built and read-only once it
// is handed to a consumer. Derived batches (Project, Head) share column
// storage with their parent, so batches must never be mutated after
// construction; every kernel that needs different row content builds a new
// batch (Gather, AppendRow).

import (
	"fmt"
	"math"
	"strconv"
)

// nullBitmap records which rows of a column are null, one bit per row. The
// bitmap is grown lazily on the first null, so all-valid columns carry no
// bitmap at all.
type nullBitmap []uint64

// get reports whether bit i is set. Bits beyond the bitmap's length read as
// zero, which is how lazily-grown bitmaps encode trailing non-null rows.
func (m nullBitmap) get(i int) bool {
	w := i >> 6
	return w < len(m) && m[w]&(1<<(uint(i)&63)) != 0
}

// set marks bit i, growing the bitmap as needed.
func (m *nullBitmap) set(i int) {
	w := i >> 6
	for len(*m) <= w {
		*m = append(*m, 0)
	}
	(*m)[w] |= 1 << (uint(i) & 63)
}

// Column is one typed vector of a ColumnBatch. Exactly one of the value
// slices is in use, selected by the column's field type (TypeTime shares the
// int64 vector).
//
// String columns decoded from v2 spill frames (frame.go) additionally carry
// the frame's sorted unique-value dictionary and the per-row codes into it:
// strs[i] == dict[codes[i]], dict is strictly ascending, so within one frame
// code equality is string equality and code order is string order. Operators
// use this for code-based fast paths (group-by, distinct, sort comparators);
// dictionaries from different frames are unrelated, so codes must never be
// compared across columns unless DictShared reports the same backing
// dictionary. Builder-constructed columns have no dictionary, and the
// read-only-after-construction contract keeps dict/codes consistent with
// strs.
type Column struct {
	typ    FieldType
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	nulls  nullBitmap
	dict   []string
	codes  []uint32
}

// Type returns the column's field type.
func (c *Column) Type() FieldType { return c.typ }

// Dict returns the column's sorted per-frame dictionary, or nil when the
// column is not dictionary-backed. Read-only.
func (c *Column) Dict() []string { return c.dict }

// Codes returns the per-row dictionary codes of a dictionary-backed column
// (nil otherwise). Only indices below the owning batch's Len are meaningful —
// Head views share longer parent vectors. Read-only.
func (c *Column) Codes() []uint32 { return c.codes }

// DictShared reports whether a and b are backed by the same dictionary (the
// same decoded frame), which is the precondition for comparing their codes.
func DictShared(a, b *Column) bool {
	return len(a.dict) > 0 && len(a.dict) == len(b.dict) && &a.dict[0] == &b.dict[0]
}

// Null reports whether row i of the column is null.
func (c *Column) Null(i int) bool { return c.nulls.get(i) }

// HasNulls reports whether the column carries a null bitmap at all. False
// guarantees every row is non-null; true only means some row may be (the
// bitmap is allocated on the first null and never dropped).
func (c *Column) HasNulls() bool { return len(c.nulls) > 0 }

// Int returns row i of an int/time column (0 when null).
func (c *Column) Int(i int) int64 { return c.ints[i] }

// Float returns row i of a float column (0 when null).
func (c *Column) Float(i int) float64 { return c.floats[i] }

// Str returns row i of a string column ("" when null).
func (c *Column) Str(i int) string { return c.strs[i] }

// Bool returns row i of a bool column (false when null).
func (c *Column) Bool(i int) bool { return c.bools[i] }

// Value returns row i as a boxed dynamic value (nil when null). Kernels avoid
// this accessor on hot paths: boxing a float64 or a string allocates.
func (c *Column) Value(i int) Value {
	if c.nulls.get(i) {
		return nil
	}
	switch c.typ {
	case TypeInt, TypeTime:
		return c.ints[i]
	case TypeFloat:
		return c.floats[i]
	case TypeString:
		return c.strs[i]
	case TypeBool:
		return c.bools[i]
	default:
		return nil
	}
}

// appendNull appends a null cell at row n.
func (c *Column) appendNull(n int) {
	c.nulls.set(n)
	switch c.typ {
	case TypeInt, TypeTime:
		c.ints = append(c.ints, 0)
	case TypeFloat:
		c.floats = append(c.floats, 0)
	case TypeString:
		c.strs = append(c.strs, "")
	case TypeBool:
		c.bools = append(c.bools, false)
	}
}

// append appends a boxed value at row n, asserting the exact dynamic type the
// schema demands (the same contract ValidateRow enforces on rows).
func (c *Column) append(f Field, v Value, n int) error {
	if v == nil {
		if !f.Nullable {
			return fmt.Errorf("storage: field %q is not nullable", f.Name)
		}
		c.appendNull(n)
		return nil
	}
	switch c.typ {
	case TypeInt, TypeTime:
		x, ok := v.(int64)
		if !ok {
			return fmt.Errorf("%w: field %q expects %s, got %T", ErrTypeMismatch, f.Name, f.Type, v)
		}
		c.ints = append(c.ints, x)
	case TypeFloat:
		x, ok := v.(float64)
		if !ok {
			return fmt.Errorf("%w: field %q expects %s, got %T", ErrTypeMismatch, f.Name, f.Type, v)
		}
		c.floats = append(c.floats, x)
	case TypeString:
		x, ok := v.(string)
		if !ok {
			return fmt.Errorf("%w: field %q expects %s, got %T", ErrTypeMismatch, f.Name, f.Type, v)
		}
		c.strs = append(c.strs, x)
	case TypeBool:
		x, ok := v.(bool)
		if !ok {
			return fmt.Errorf("%w: field %q expects %s, got %T", ErrTypeMismatch, f.Name, f.Type, v)
		}
		c.bools = append(c.bools, x)
	default:
		return fmt.Errorf("%w: field %q has unsupported type %s", ErrTypeMismatch, f.Name, f.Type)
	}
	return nil
}

// appendFrom appends row i of src (a column of the same type) at row n.
func (c *Column) appendFrom(src *Column, i, n int) {
	if src.nulls.get(i) {
		c.appendNull(n)
		return
	}
	switch c.typ {
	case TypeInt, TypeTime:
		c.ints = append(c.ints, src.ints[i])
	case TypeFloat:
		c.floats = append(c.floats, src.floats[i])
	case TypeString:
		c.strs = append(c.strs, src.strs[i])
	case TypeBool:
		c.bools = append(c.bools, src.bools[i])
	}
}

// appendGather appends the selected rows of src (a column of the same type)
// in selection order, with the type dispatch hoisted out of the row loop;
// dstStart is the destination row index of sel's first row. Columns without
// nulls take a tight typed copy loop; columns with nulls fall back to the
// per-cell copy, which maintains the destination bitmap.
func (c *Column) appendGather(src *Column, sel []int32, dstStart int) {
	if len(src.nulls) == 0 {
		switch c.typ {
		case TypeInt, TypeTime:
			for _, i := range sel {
				c.ints = append(c.ints, src.ints[i])
			}
		case TypeFloat:
			for _, i := range sel {
				c.floats = append(c.floats, src.floats[i])
			}
		case TypeString:
			for _, i := range sel {
				c.strs = append(c.strs, src.strs[i])
			}
		case TypeBool:
			for _, i := range sel {
				c.bools = append(c.bools, src.bools[i])
			}
		}
		return
	}
	for j, i := range sel {
		c.appendFrom(src, int(i), dstStart+j)
	}
}

// grow pre-sizes the column's value vector for capacity rows.
func (c *Column) grow(capacity int) {
	switch c.typ {
	case TypeInt, TypeTime:
		c.ints = make([]int64, 0, capacity)
	case TypeFloat:
		c.floats = make([]float64, 0, capacity)
	case TypeString:
		c.strs = make([]string, 0, capacity)
	case TypeBool:
		c.bools = make([]bool, 0, capacity)
	}
}

// ColumnBatch is one partition of rows in columnar form: a schema plus one
// typed Column per field.
type ColumnBatch struct {
	schema *Schema
	cols   []Column
	n      int
}

// NewColumnBatch returns an empty batch over schema with capacity rows
// pre-allocated per column.
func NewColumnBatch(schema *Schema, capacity int) *ColumnBatch {
	b := &ColumnBatch{schema: schema, cols: make([]Column, schema.Len())}
	for i := range b.cols {
		b.cols[i].typ = schema.Field(i).Type
		if capacity > 0 {
			b.cols[i].grow(capacity)
		}
	}
	return b
}

// BatchFromRows converts boxed rows into a columnar batch, validating each
// row against the schema exactly as ValidateRow would (arity, per-field
// dynamic type, nullability).
func BatchFromRows(schema *Schema, rows []Row) (*ColumnBatch, error) {
	b := NewColumnBatch(schema, len(rows))
	for i, r := range rows {
		if err := b.AppendRow(r); err != nil {
			return nil, fmt.Errorf("storage: batch row %d: %w", i, err)
		}
	}
	return b, nil
}

// Schema returns the batch schema.
func (b *ColumnBatch) Schema() *Schema { return b.schema }

// Len returns the number of rows in the batch.
func (b *ColumnBatch) Len() int { return b.n }

// Width returns the number of columns.
func (b *ColumnBatch) Width() int { return len(b.cols) }

// Column returns column c. The returned pointer shares the batch's storage
// and must be treated as read-only.
func (b *ColumnBatch) Column(c int) *Column { return &b.cols[c] }

// AppendRow appends a boxed row, enforcing the schema contract (the same
// errors ValidateRow reports: arity, field type, nullability). Unboxing into
// the typed vectors is the validation — mismatched rows cannot be stored.
func (b *ColumnBatch) AppendRow(r Row) error {
	if len(r) != b.schema.Len() {
		return fmt.Errorf("storage: row has %d values, schema has %d fields", len(r), b.schema.Len())
	}
	for i := range b.cols {
		if err := b.cols[i].append(b.schema.Field(i), r[i], b.n); err != nil {
			return err
		}
	}
	b.n++
	return nil
}

// AppendRowFrom appends row i of src, a batch with an identical column
// layout, using typed copies (no boxing).
func (b *ColumnBatch) AppendRowFrom(src *ColumnBatch, i int) {
	for c := range b.cols {
		b.cols[c].appendFrom(&src.cols[c], i, b.n)
	}
	b.n++
}

// AppendGather appends the selected rows of src, a batch with an identical
// column layout, in selection order. It is AppendRowFrom amortised over a
// selection vector: the per-column type dispatch runs once per (column,
// selection) instead of once per cell — the shuffle gather's hot path.
func (b *ColumnBatch) AppendGather(src *ColumnBatch, sel []int32) {
	for c := range b.cols {
		b.cols[c].appendGather(&src.cols[c], sel, b.n)
	}
	b.n += len(sel)
}

// AppendJoined appends the concatenation of row li of left and row ri of
// right; the batch's leading columns must match left's layout and the
// trailing columns right's. It is the typed emit path of the vectorized hash
// join.
func (b *ColumnBatch) AppendJoined(left *ColumnBatch, li int, right *ColumnBatch, ri int) {
	lw := len(left.cols)
	for c := range left.cols {
		b.cols[c].appendFrom(&left.cols[c], li, b.n)
	}
	for c := range right.cols {
		b.cols[lw+c].appendFrom(&right.cols[c], ri, b.n)
	}
	b.n++
}

// AppendNullExtended appends row li of left followed by nulls for the
// remaining columns — the unmatched-row emit path of a vectorized left join.
func (b *ColumnBatch) AppendNullExtended(left *ColumnBatch, li int) {
	lw := len(left.cols)
	for c := range left.cols {
		b.cols[c].appendFrom(&left.cols[c], li, b.n)
	}
	for c := lw; c < len(b.cols); c++ {
		b.cols[c].appendNull(b.n)
	}
	b.n++
}

// Value returns cell (row, col) as a boxed value (nil when null).
func (b *ColumnBatch) Value(row, col int) Value {
	if col < 0 || col >= len(b.cols) {
		return nil
	}
	return b.cols[col].Value(row)
}

// NullAt reports whether cell (row, col) is null (or col is out of range).
func (b *ColumnBatch) NullAt(row, col int) bool {
	if col < 0 || col >= len(b.cols) {
		return true
	}
	return b.cols[col].Null(row)
}

// FloatAt converts cell (row, col) to float64 with AsFloat semantics, reading
// the typed vector directly (no boxing).
func (b *ColumnBatch) FloatAt(row, col int) (float64, bool) {
	if col < 0 || col >= len(b.cols) {
		return 0, false
	}
	c := &b.cols[col]
	if c.nulls.get(row) {
		return 0, false
	}
	switch c.typ {
	case TypeFloat:
		return c.floats[row], true
	case TypeInt, TypeTime:
		return float64(c.ints[row]), true
	case TypeBool:
		if c.bools[row] {
			return 1, true
		}
		return 0, true
	case TypeString:
		f, err := strconv.ParseFloat(c.strs[row], 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// IntAt converts cell (row, col) to int64 with AsInt semantics, reading the
// typed vector directly.
func (b *ColumnBatch) IntAt(row, col int) (int64, bool) {
	if col < 0 || col >= len(b.cols) {
		return 0, false
	}
	c := &b.cols[col]
	if c.nulls.get(row) {
		return 0, false
	}
	switch c.typ {
	case TypeInt, TypeTime:
		return c.ints[row], true
	case TypeFloat:
		f := c.floats[row]
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, false
		}
		return int64(f), true
	case TypeBool:
		if c.bools[row] {
			return 1, true
		}
		return 0, true
	case TypeString:
		i, err := strconv.ParseInt(c.strs[row], 10, 64)
		if err != nil {
			return 0, false
		}
		return i, true
	default:
		return 0, false
	}
}

// BoolAt converts cell (row, col) to bool with AsBool semantics.
func (b *ColumnBatch) BoolAt(row, col int) (bool, bool) {
	if col < 0 || col >= len(b.cols) {
		return false, false
	}
	c := &b.cols[col]
	if c.nulls.get(row) {
		return false, false
	}
	switch c.typ {
	case TypeBool:
		return c.bools[row], true
	case TypeInt, TypeTime:
		return c.ints[row] != 0, true
	case TypeFloat:
		return c.floats[row] != 0, true
	case TypeString:
		v, err := strconv.ParseBool(c.strs[row])
		if err != nil {
			return false, false
		}
		return v, true
	default:
		return false, false
	}
}

// StringAt converts cell (row, col) to a string with AsString semantics (""
// when null). Only string columns are read zero-copy; other types format.
func (b *ColumnBatch) StringAt(row, col int) string {
	if col < 0 || col >= len(b.cols) {
		return ""
	}
	c := &b.cols[col]
	if c.nulls.get(row) {
		return ""
	}
	switch c.typ {
	case TypeString:
		return c.strs[row]
	case TypeInt, TypeTime:
		return strconv.FormatInt(c.ints[row], 10)
	case TypeFloat:
		return strconv.FormatFloat(c.floats[row], 'g', -1, 64)
	case TypeBool:
		return strconv.FormatBool(c.bools[row])
	default:
		return ""
	}
}

// Row materialises row i as a boxed Row.
func (b *ColumnBatch) Row(i int) Row {
	r := make(Row, len(b.cols))
	for c := range b.cols {
		r[c] = b.cols[c].Value(i)
	}
	return r
}

// Rows materialises every row. All cells share one backing array, so the
// conversion costs one slice allocation plus the boxing of non-null numeric
// cells rather than one allocation per row.
func (b *ColumnBatch) Rows() []Row {
	if b.n == 0 {
		return nil
	}
	w := len(b.cols)
	backing := make([]Value, b.n*w)
	out := make([]Row, b.n)
	for i := 0; i < b.n; i++ {
		row := backing[i*w : (i+1)*w : (i+1)*w]
		for c := range b.cols {
			row[c] = b.cols[c].Value(i)
		}
		out[i] = row
	}
	return out
}

// Gather builds a new batch holding the selected rows, in selection order,
// with typed copies (no boxing). It materialises a selection vector.
func (b *ColumnBatch) Gather(sel []int32) *ColumnBatch {
	out := NewColumnBatch(b.schema, len(sel))
	out.AppendGather(b, sel)
	return out
}

// ProjectCols returns a batch exposing only the given columns (by index)
// under the projected schema. Column storage is shared with the parent — the
// projection itself copies and boxes nothing.
func (b *ColumnBatch) ProjectCols(out *Schema, indices []int) *ColumnBatch {
	cols := make([]Column, len(indices))
	for i, idx := range indices {
		cols[i] = b.cols[idx]
	}
	return &ColumnBatch{schema: out, cols: cols, n: b.n}
}

// WithAppendedColumn returns a batch over out (= b's schema plus one field)
// whose trailing column is col; the existing columns are shared, not copied.
func (b *ColumnBatch) WithAppendedColumn(out *Schema, col Column) *ColumnBatch {
	cols := make([]Column, len(b.cols)+1)
	copy(cols, b.cols)
	cols[len(b.cols)] = col
	return &ColumnBatch{schema: out, cols: cols, n: b.n}
}

// Head returns a view of the first k rows (k is clamped to Len). The view
// shares column storage with b.
func (b *ColumnBatch) Head(k int) *ColumnBatch {
	if k >= b.n {
		return b
	}
	if k < 0 {
		k = 0
	}
	return &ColumnBatch{schema: b.schema, cols: b.cols, n: k}
}

// NewColumnBuilder returns an empty column of the given type with capacity
// rows pre-allocated, for kernels that compute a derived column.
func NewColumnBuilder(t FieldType, capacity int) Column {
	c := Column{typ: t}
	c.grow(capacity)
	return c
}

// AppendValue appends a boxed value to the column under field f's contract;
// row n must be the column's current length.
func (c *Column) AppendValue(f Field, v Value, n int) error { return c.append(f, v, n) }

// Typed appends for kernels that build a column without boxing. Like
// appendFrom they trust the caller to match the column's type; mismatches are
// the builder's bug, not a data error, so there is no per-call validation.

// AppendInt appends v to an int/time column.
func (c *Column) AppendInt(v int64) { c.ints = append(c.ints, v) }

// AppendFloat appends v to a float column.
func (c *Column) AppendFloat(v float64) { c.floats = append(c.floats, v) }

// AppendStr appends v to a string column.
func (c *Column) AppendStr(v string) { c.strs = append(c.strs, v) }

// AppendBool appends v to a bool column.
func (c *Column) AppendBool(v bool) { c.bools = append(c.bools, v) }

// AppendNull appends a null cell; n must be the column's current length.
func (c *Column) AppendNull(n int) { c.appendNull(n) }

// BatchOfColumns assembles a batch over schema from externally built columns
// of n rows each. Column storage is adopted, not copied — the caller must not
// mutate the columns afterwards. Per-column types are verified against the
// schema; row counts are the caller's contract (columns built with the typed
// Append helpers or shared from another batch of n rows satisfy it).
func BatchOfColumns(schema *Schema, n int, cols []Column) (*ColumnBatch, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: batch needs a schema", ErrEmptySchema)
	}
	if len(cols) != schema.Len() {
		return nil, fmt.Errorf("storage: batch has %d columns, schema %s has %d", len(cols), schema, schema.Len())
	}
	for i := range cols {
		if want := schema.Field(i).Type; cols[i].typ != want {
			return nil, fmt.Errorf("%w: column %d is %s, schema expects %s", ErrTypeMismatch, i, cols[i].typ, want)
		}
	}
	return &ColumnBatch{schema: schema, cols: cols, n: n}, nil
}
