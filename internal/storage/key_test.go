package storage

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func keyTestSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Field{Name: "id", Type: TypeInt},
		Field{Name: "name", Type: TypeString, Nullable: true},
		Field{Name: "score", Type: TypeFloat},
		Field{Name: "active", Type: TypeBool},
	)
}

func TestNewKeyEncoderUnknownColumn(t *testing.T) {
	s := keyTestSchema(t)
	if _, err := NewKeyEncoder(s, "id", "ghost"); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("unknown column error = %v, want ErrUnknownField", err)
	}
	if _, err := NewKeyEncoder(nil, "id"); err == nil {
		t.Fatal("nil schema with columns must fail")
	}
	if _, err := NewKeyEncoder(nil); err != nil {
		t.Fatalf("whole-row encoder needs no schema: %v", err)
	}
}

func TestKeyEncoderInjective(t *testing.T) {
	s := keyTestSchema(t)
	enc, err := NewKeyEncoder(s, "id", "name")
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{int64(1), "a", 0.5, true},
		{int64(1), "b", 0.5, true},
		{int64(2), "a", 0.5, true},
		{int64(1), nil, 0.5, true},
		{int64(1), "", 0.5, true}, // null and empty string must differ
	}
	seen := map[string]int{}
	for i, r := range rows {
		k := string(enc.Key(r))
		if j, dup := seen[k]; dup {
			t.Errorf("rows %d and %d collide on key %q", i, j, k)
		}
		seen[k] = i
	}
	// Same key columns, different non-key columns: keys must match.
	a := enc.Key(Row{int64(7), "x", 1.0, true})
	ka := append([]byte(nil), a...)
	b := enc.Key(Row{int64(7), "x", 2.0, false})
	if !bytes.Equal(ka, b) {
		t.Error("key must depend only on the key columns")
	}
}

// TestKeyEncoderTypeTagged guards the injectivity property the old
// AsString+Join rendering lacked: equal renderings of different types (e.g.
// int64(5) vs "5") must encode differently, and multi-column keys must not be
// ambiguous under concatenation.
func TestKeyEncoderTypeTagged(t *testing.T) {
	if bytes.Equal(AppendKeyValue(nil, int64(5)), AppendKeyValue(nil, "5")) {
		t.Error("int64(5) and \"5\" must encode differently")
	}
	if bytes.Equal(AppendKeyValue(nil, true), AppendKeyValue(nil, "true")) {
		t.Error("bool and string renderings must encode differently")
	}
	// ("ab","c") vs ("a","bc") — a separator-based string key would collide
	// without escaping; the length-prefixed encoding must not.
	ab := AppendKeyValue(AppendKeyValue(nil, "ab"), "c")
	a := AppendKeyValue(AppendKeyValue(nil, "a"), "bc")
	if bytes.Equal(ab, a) {
		t.Error(`("ab","c") and ("a","bc") must encode differently`)
	}
}

// TestKeyEncoderNegativeZero guards the float normalisation: -0.0 and 0.0
// are equal under Go == and CompareValues, so they must produce identical key
// bytes (and hashes) on both the row and the batch encoding paths — otherwise
// group-by/distinct/join split them into two groups while sort orders them as
// one value.
func TestKeyEncoderNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if !bytes.Equal(AppendKeyValue(nil, negZero), AppendKeyValue(nil, 0.0)) {
		t.Error("-0.0 and 0.0 must produce identical key bytes")
	}
	// Distinct non-zero values must still be distinct.
	if bytes.Equal(AppendKeyValue(nil, -1.0), AppendKeyValue(nil, 1.0)) {
		t.Error("-1.0 and 1.0 must produce different key bytes")
	}

	s := keyTestSchema(t)
	enc, err := NewKeyEncoder(s, "score")
	if err != nil {
		t.Fatal(err)
	}
	rowNeg := Row{int64(1), "a", negZero, true}
	rowPos := Row{int64(2), "b", 0.0, false}
	kNeg := append([]byte(nil), enc.Key(rowNeg)...)
	if !bytes.Equal(kNeg, enc.Key(rowPos)) {
		t.Error("row encoder must key -0.0 and 0.0 identically")
	}
	if enc.Hash(rowNeg) != enc.Hash(rowPos) {
		t.Error("row encoder must hash -0.0 and 0.0 identically")
	}

	batch, err := BatchFromRows(s, []Row{rowNeg, rowPos})
	if err != nil {
		t.Fatal(err)
	}
	bNeg := append([]byte(nil), enc.BatchKey(batch, 0)...)
	if !bytes.Equal(bNeg, enc.BatchKey(batch, 1)) {
		t.Error("batch encoder must key -0.0 and 0.0 identically")
	}
	if !bytes.Equal(bNeg, kNeg) {
		t.Error("batch and row encodings of the key must stay byte-identical")
	}
	if enc.BatchHash(batch, 0) != enc.BatchHash(batch, 1) {
		t.Error("batch encoder must hash -0.0 and 0.0 identically")
	}
}

func TestKeyEncoderHashDeterministic(t *testing.T) {
	s := keyTestSchema(t)
	enc, err := NewKeyEncoder(s, "id", "name", "score")
	if err != nil {
		t.Fatal(err)
	}
	clone := enc.Clone()
	r := Row{int64(42), "abc", 3.25, false}
	if enc.Hash(r) != clone.Hash(r) {
		t.Error("clone must hash identically")
	}
	if HashBytes64([]byte("shuffle")) != HashString64("shuffle") {
		t.Error("HashBytes64 and HashString64 must agree")
	}
}

func TestKeyEncoderSteadyStateAllocFree(t *testing.T) {
	s := keyTestSchema(t)
	enc, err := NewKeyEncoder(s, "id", "name")
	if err != nil {
		t.Fatal(err)
	}
	r := Row{int64(9), "warm-up grows the buffer", 1.0, true}
	enc.Hash(r)
	allocs := testing.AllocsPerRun(100, func() { enc.Hash(r) })
	if allocs > 0 {
		t.Errorf("Hash allocates %.1f objects per row after warm-up, want 0", allocs)
	}
	seen := map[string]struct{}{string(enc.Key(r)): {}}
	allocs = testing.AllocsPerRun(100, func() {
		if _, ok := seen[string(enc.Key(r))]; !ok {
			t.Error("lookup missed")
		}
	})
	if allocs > 0 {
		t.Errorf("map lookup via string(Key) allocates %.1f objects, want 0", allocs)
	}
}

func TestPartitionOfHashProperties(t *testing.T) {
	fn := func(h uint64, n int) bool {
		if n < 0 {
			n = -n
		}
		n = n%64 + 1
		p := PartitionOfHash(h, n)
		return p >= 0 && p < n && p == PartitionOfHash(h, n)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
	if PartitionOfHash(12345, 0) != 0 || PartitionOfHash(12345, 1) != 0 {
		t.Error("n <= 1 must map to partition 0")
	}
}
