package storage

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func newPeopleTable(t *testing.T, opts ...TableOption) *Table {
	t.Helper()
	tbl, err := NewTable("people", testSchema(t), opts...)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", testSchema(t)); err == nil {
		t.Error("empty table name must fail")
	}
	if _, err := NewTable("x", nil); err == nil {
		t.Error("nil schema must fail")
	}
	if _, err := NewTable("x", testSchema(t), WithPartitionKey("missing")); err == nil {
		t.Error("unknown partition key must fail")
	}
}

func TestTableAppendAndScan(t *testing.T) {
	tbl := newPeopleTable(t)
	rows := []Row{
		{int64(1), "alice", 10.0, true, int64(1000)},
		{int64(2), "bob", 20.0, nil, int64(2000)},
		{int64(3), "carol", 30.0, false, int64(3000)},
	}
	n, err := tbl.AppendAll(rows)
	if err != nil || n != 3 {
		t.Fatalf("AppendAll = %d, %v", n, err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tbl.NumRows())
	}
	seen := 0
	tbl.Scan(func(r Row) bool { seen++; return true })
	if seen != 3 {
		t.Errorf("Scan visited %d rows, want 3", seen)
	}
	seen = 0
	tbl.Scan(func(r Row) bool { seen++; return false })
	if seen != 1 {
		t.Errorf("Scan with early stop visited %d rows, want 1", seen)
	}
}

func TestTableAppendRejectsBadRows(t *testing.T) {
	tbl := newPeopleTable(t)
	n, err := tbl.AppendAll([]Row{
		{int64(1), "alice", 10.0, true, int64(1000)},
		{"bad", "bob", 20.0, nil, int64(2000)},
	})
	if err == nil {
		t.Fatal("AppendAll must fail on the invalid row")
	}
	if n != 1 || tbl.NumRows() != 1 {
		t.Errorf("appended = %d rows (table has %d), want 1", n, tbl.NumRows())
	}
}

func TestTableHashPartitioning(t *testing.T) {
	tbl := newPeopleTable(t, WithPartitions(3), WithPartitionKey("name"))
	names := []string{"alice", "bob", "carol", "alice", "alice", "dave"}
	for i, n := range names {
		if err := tbl.Append(Row{int64(i), n, 1.0, true, int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	// All rows with the same key must land in the same partition.
	byName := map[string]int{}
	for p := 0; p < tbl.Partitions(); p++ {
		rows, err := tbl.Partition(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			name := r[1].(string)
			if prev, ok := byName[name]; ok && prev != p {
				t.Errorf("key %q split across partitions %d and %d", name, prev, p)
			}
			byName[name] = p
		}
	}
	if tbl.NumRows() != len(names) {
		t.Errorf("NumRows = %d, want %d", tbl.NumRows(), len(names))
	}
	if _, err := tbl.Partition(99); err == nil {
		t.Error("out-of-range partition must fail")
	}
}

func TestTableRoundRobinSpreadsRows(t *testing.T) {
	tbl := newPeopleTable(t, WithPartitions(4))
	for i := 0; i < 8; i++ {
		if err := tbl.Append(Row{int64(i), "x", 1.0, true, int64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 4; p++ {
		rows, _ := tbl.Partition(p)
		if len(rows) != 2 {
			t.Errorf("partition %d has %d rows, want 2", p, len(rows))
		}
	}
}

func TestTableClearAndRepartition(t *testing.T) {
	tbl := newPeopleTable(t, WithPartitions(2))
	for i := 0; i < 10; i++ {
		_ = tbl.Append(Row{int64(i), "n", 1.0, true, int64(0)})
	}
	re, err := tbl.Repartition(5, "id")
	if err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	if re.Partitions() != 5 || re.NumRows() != 10 {
		t.Errorf("repartitioned: partitions=%d rows=%d", re.Partitions(), re.NumRows())
	}
	tbl.Clear()
	if tbl.NumRows() != 0 {
		t.Errorf("Clear left %d rows", tbl.NumRows())
	}
}

func TestTableConcurrentAppend(t *testing.T) {
	tbl := newPeopleTable(t, WithPartitions(4), WithPartitionKey("name"))
	var wg sync.WaitGroup
	const writers = 8
	const perWriter = 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = tbl.Append(Row{int64(w*1000 + i), "writer", 1.0, true, int64(0)})
			}
		}(w)
	}
	wg.Wait()
	if got := tbl.NumRows(); got != writers*perWriter {
		t.Fatalf("NumRows = %d, want %d", got, writers*perWriter)
	}
}

func TestHashPartitionProperties(t *testing.T) {
	// Property: HashPartition always returns a value in [0, n) and is
	// deterministic.
	f := func(key string, n uint8) bool {
		parts := int(n%16) + 1
		p1 := HashPartition(key, parts)
		p2 := HashPartition(key, parts)
		return p1 == p2 && p1 >= 0 && p1 < parts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if HashPartition("anything", 1) != 0 {
		t.Error("single partition must always map to 0")
	}
	if HashPartition("anything", 0) != 0 {
		t.Error("degenerate partition count must map to 0")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tbl := newPeopleTable(t)
	if err := c.Register(tbl); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(tbl); err == nil {
		t.Error("duplicate registration must fail")
	}
	if err := c.Register(nil); err == nil {
		t.Error("nil table registration must fail")
	}
	got, err := c.Lookup("people")
	if err != nil || got != tbl {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := c.Lookup("ghost"); err == nil {
		t.Error("lookup of unknown table must fail")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "people" {
		t.Errorf("Names = %v", names)
	}
	other := newPeopleTable(t)
	c.Replace(other)
	got, _ = c.Lookup("people")
	if got != other {
		t.Error("Replace must overwrite")
	}
	c.Drop("people")
	if _, err := c.Lookup("people"); err == nil {
		t.Error("dropped table must not resolve")
	}
	c.Drop("people") // dropping twice is a no-op
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := newPeopleTable(t)
	rows := []Row{
		{int64(1), "alice", 10.5, true, int64(1000)},
		{int64(2), "bob", 20.25, nil, int64(2000)},
	}
	if _, err := tbl.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, "people2", tbl.Schema())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumRows() != 2 {
		t.Fatalf("round trip rows = %d, want 2", back.NumRows())
	}
	// Spot-check typed values survived.
	found := false
	back.Scan(func(r Row) bool {
		if r[1] == "alice" {
			found = true
			if r[0] != int64(1) || r[2] != 10.5 || r[3] != true {
				t.Errorf("alice row corrupted: %v", r)
			}
		}
		return true
	})
	if !found {
		t.Error("alice row missing after round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	schema := MustSchema(Field{Name: "id", Type: TypeInt}, Field{Name: "v", Type: TypeFloat, Nullable: true})
	if _, err := ReadCSV(strings.NewReader("v\n1.5\n"), "t", schema); err == nil {
		t.Error("missing required column must fail")
	}
	if _, err := ReadCSV(strings.NewReader("id,v\nnot-int,1.5\n"), "t", schema); err == nil {
		t.Error("bad cell must fail")
	}
	got, err := ReadCSV(strings.NewReader("id,v,extra\n7,,ignored\n"), "t", schema)
	if err != nil {
		t.Fatalf("ReadCSV with empty nullable cell: %v", err)
	}
	r := got.Rows()[0]
	if r[0] != int64(7) || r[1] != nil {
		t.Errorf("row = %v, want [7 <nil>]", r)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tbl := newPeopleTable(t)
	rows := []Row{
		{int64(1), "alice", 10.5, true, int64(1000)},
		{int64(2), "bob", 20.25, nil, int64(2000)},
	}
	if _, err := tbl.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tbl); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf, "people2", tbl.Schema())
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.NumRows() != 2 {
		t.Fatalf("round trip rows = %d, want 2", back.NumRows())
	}
}

func TestReadJSONErrors(t *testing.T) {
	schema := MustSchema(Field{Name: "id", Type: TypeInt})
	if _, err := ReadJSON(strings.NewReader(`{"id": "abc"}`), "t", schema); err == nil {
		t.Error("unparsable value must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{bad json`), "t", schema); err == nil {
		t.Error("malformed json must fail")
	}
	got, err := ReadJSON(strings.NewReader(`{"id": 3}`+"\n"+`{"id": 4.9}`), "t", schema)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	rows := got.Rows()
	if rows[0][0] != int64(3) || rows[1][0] != int64(4) {
		t.Errorf("rows = %v", rows)
	}
}
