package storage

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serialises the table to w as CSV with a header row. Times are
// written as Unix milliseconds.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return fmt.Errorf("storage: write csv header: %w", err)
	}
	var werr error
	t.Scan(func(r Row) bool {
		rec := make([]string, len(r))
		for i, v := range r {
			rec[i] = AsString(v)
		}
		if err := cw.Write(rec); err != nil {
			werr = fmt.Errorf("storage: write csv row: %w", err)
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses CSV data with a header row into a new table with the given
// name and schema. Header columns are matched to schema fields by name; extra
// CSV columns are ignored, missing non-nullable columns are an error.
func ReadCSV(r io.Reader, name string, schema *Schema, opts ...TableOption) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: read csv header: %w", err)
	}
	colIdx := make([]int, schema.Len())
	for i := range colIdx {
		colIdx[i] = -1
	}
	for pos, col := range header {
		if idx := schema.IndexOf(col); idx >= 0 {
			colIdx[idx] = pos
		}
	}
	for i, idx := range colIdx {
		if idx < 0 && !schema.Field(i).Nullable {
			return nil, fmt.Errorf("storage: csv is missing required column %q", schema.Field(i).Name)
		}
	}
	table, err := NewTable(name, schema, opts...)
	if err != nil {
		return nil, err
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read csv line %d: %w", line, err)
		}
		line++
		row := make(Row, schema.Len())
		for i := 0; i < schema.Len(); i++ {
			pos := colIdx[i]
			if pos < 0 || pos >= len(rec) || rec[pos] == "" {
				row[i] = nil
				continue
			}
			v, err := parseCell(schema.Field(i).Type, rec[pos])
			if err != nil {
				return nil, fmt.Errorf("storage: csv line %d field %q: %w", line, schema.Field(i).Name, err)
			}
			row[i] = v
		}
		if err := table.Append(row); err != nil {
			return nil, err
		}
	}
	return table, nil
}

func parseCell(t FieldType, s string) (Value, error) {
	switch t {
	case TypeString:
		return s, nil
	case TypeInt, TypeTime:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parse int %q: %w", s, err)
		}
		return i, nil
	case TypeFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("parse float %q: %w", s, err)
		}
		return f, nil
	case TypeBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return nil, fmt.Errorf("parse bool %q: %w", s, err)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("unsupported field type %v", t)
	}
}

// jsonRecord is the on-wire representation used by WriteJSON / ReadJSON.
type jsonRecord map[string]any

// WriteJSON serialises the table as newline-delimited JSON objects.
func WriteJSON(w io.Writer, t *Table) error {
	enc := json.NewEncoder(w)
	names := t.Schema().Names()
	var werr error
	t.Scan(func(r Row) bool {
		obj := make(jsonRecord, len(r))
		for i, v := range r {
			obj[names[i]] = v
		}
		if err := enc.Encode(obj); err != nil {
			werr = fmt.Errorf("storage: write json row: %w", err)
			return false
		}
		return true
	})
	return werr
}

// ReadJSON parses newline-delimited JSON objects into a new table. Numeric
// JSON values are coerced to the schema's declared type.
func ReadJSON(r io.Reader, name string, schema *Schema, opts ...TableOption) (*Table, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	table, err := NewTable(name, schema, opts...)
	if err != nil {
		return nil, err
	}
	line := 0
	for {
		var obj jsonRecord
		if err := dec.Decode(&obj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("storage: read json record %d: %w", line, err)
		}
		line++
		row := make(Row, schema.Len())
		for i := 0; i < schema.Len(); i++ {
			f := schema.Field(i)
			raw, ok := obj[f.Name]
			if !ok || raw == nil {
				row[i] = nil
				continue
			}
			v, err := coerceJSON(f.Type, raw)
			if err != nil {
				return nil, fmt.Errorf("storage: json record %d field %q: %w", line, f.Name, err)
			}
			row[i] = v
		}
		if err := table.Append(row); err != nil {
			return nil, err
		}
	}
	return table, nil
}

func coerceJSON(t FieldType, raw any) (Value, error) {
	switch x := raw.(type) {
	case json.Number:
		switch t {
		case TypeInt, TypeTime:
			i, err := x.Int64()
			if err != nil {
				f, ferr := x.Float64()
				if ferr != nil {
					return nil, fmt.Errorf("parse number %q: %w", x.String(), err)
				}
				return int64(f), nil
			}
			return i, nil
		case TypeFloat:
			f, err := x.Float64()
			if err != nil {
				return nil, fmt.Errorf("parse number %q: %w", x.String(), err)
			}
			return f, nil
		case TypeString:
			return x.String(), nil
		case TypeBool:
			f, err := x.Float64()
			if err != nil {
				return nil, fmt.Errorf("parse number %q: %w", x.String(), err)
			}
			return f != 0, nil
		}
	case string:
		return parseCell(t, x)
	case bool:
		return Coerce(t, x)
	}
	return nil, fmt.Errorf("unsupported json value %T", raw)
}
