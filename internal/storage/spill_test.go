package storage

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"
)

func spillTestSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Field{Name: "id", Type: TypeInt},
		Field{Name: "score", Type: TypeFloat, Nullable: true},
		Field{Name: "name", Type: TypeString, Nullable: true},
		Field{Name: "active", Type: TypeBool},
		Field{Name: "at", Type: TypeTime, Nullable: true},
	)
}

func spillTestRows(n int) []Row {
	negZero := math.Copysign(0, -1)
	rows := make([]Row, n)
	for i := range rows {
		var score Value = float64(i) / 3
		switch i % 5 {
		case 1:
			score = nil
		case 2:
			score = negZero
		case 3:
			score = math.NaN()
		}
		var name Value = "row"
		if i%4 == 0 {
			name = nil
		} else if i%7 == 0 {
			name = "" // empty and null strings must survive distinctly
		}
		var at Value = int64(1700000000000 + i)
		if i%6 == 0 {
			at = nil
		}
		rows[i] = Row{int64(i), score, name, i%2 == 0, at}
	}
	return rows
}

// assertBatchesEqual compares two batches cell by cell, treating NaN bit
// patterns as equal to themselves (reflect.DeepEqual would reject NaN == NaN).
func assertBatchesEqual(t *testing.T, got, want *ColumnBatch) {
	t.Helper()
	if got.Len() != want.Len() || got.Width() != want.Width() {
		t.Fatalf("batch shape = (%d,%d), want (%d,%d)", got.Len(), got.Width(), want.Len(), want.Width())
	}
	for i := 0; i < want.Len(); i++ {
		for c := 0; c < want.Width(); c++ {
			if got.NullAt(i, c) != want.NullAt(i, c) {
				t.Fatalf("cell (%d,%d) nullness = %v, want %v", i, c, got.NullAt(i, c), want.NullAt(i, c))
			}
			g, w := got.Value(i, c), want.Value(i, c)
			if gf, ok := g.(float64); ok {
				wf, ok := w.(float64)
				if !ok || math.Float64bits(gf) != math.Float64bits(wf) {
					t.Fatalf("cell (%d,%d) float bits %x, want %x (%v vs %v)", i, c,
						math.Float64bits(gf), math.Float64bits(wf), g, w)
				}
				continue
			}
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("cell (%d,%d) = %#v, want %#v", i, c, g, w)
			}
		}
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	schema := spillTestSchema(t)
	b, err := BatchFromRows(schema, spillTestRows(137))
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeBatch(nil, b)
	dec, err := DecodeBatch(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, dec, b)

	// Re-encoding the decoded batch must be byte-identical: the codec is
	// canonical, so spill files round-trip exactly (floats included).
	enc2 := EncodeBatch(nil, dec)
	if string(enc) != string(enc2) {
		t.Error("re-encoding a decoded batch must be byte-identical")
	}
}

func TestBatchCodecEmptyBatch(t *testing.T) {
	schema := spillTestSchema(t)
	b := NewColumnBatch(schema, 0)
	dec, err := DecodeBatch(schema, EncodeBatch(nil, b))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 0 || dec.Width() != schema.Len() {
		t.Fatalf("empty round trip = (%d,%d)", dec.Len(), dec.Width())
	}
}

// TestBatchCodecHeadView encodes a Head view (which shares its parent's
// longer vectors and null bitmap) and checks only the visible rows survive.
func TestBatchCodecHeadView(t *testing.T) {
	schema := spillTestSchema(t)
	parent, err := BatchFromRows(schema, spillTestRows(100))
	if err != nil {
		t.Fatal(err)
	}
	head := parent.Head(7)
	dec, err := DecodeBatch(schema, EncodeBatch(nil, head))
	if err != nil {
		t.Fatal(err)
	}
	want, err := BatchFromRows(schema, spillTestRows(100)[:7])
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, dec, want)
}

func TestBatchCodecRejectsCorruptInput(t *testing.T) {
	schema := spillTestSchema(t)
	b, err := BatchFromRows(schema, spillTestRows(10))
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeBatch(nil, b)
	for name, data := range map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte{0x00}, enc[1:]...),
		"truncated":    enc[:len(enc)/2],
		"short header": enc[:3],
	} {
		if _, err := DecodeBatch(schema, data); !errors.Is(err, ErrBadBatchEncoding) {
			t.Errorf("%s: error = %v, want ErrBadBatchEncoding", name, err)
		}
	}
	// A forged row count far past what any payload could back must be
	// rejected before allocation (it used to drive a makeslice panic on
	// string columns), and so must a null-word count whose byte size
	// overflows uint64.
	huge := []byte{0xCB, 0x01}
	huge = binary.AppendUvarint(huge, 1<<40)
	huge = binary.AppendUvarint(huge, uint64(schema.Len()))
	huge = append(huge, byte(TypeString), 1, 0)
	if _, err := DecodeBatch(schema, huge); !errors.Is(err, ErrBadBatchEncoding) {
		t.Errorf("huge row count: error = %v, want ErrBadBatchEncoding", err)
	}
	wordBomb := []byte{0xCB, 0x01}
	wordBomb = binary.AppendUvarint(wordBomb, 1)
	wordBomb = binary.AppendUvarint(wordBomb, uint64(schema.Len()))
	wordBomb = append(wordBomb, byte(TypeInt), 12)
	wordBomb = binary.AppendUvarint(wordBomb, 1<<62) // words*8 would overflow
	wordBomb = append(wordBomb, make([]byte, 8)...)
	if _, err := DecodeBatch(schema, wordBomb); !errors.Is(err, ErrBadBatchEncoding) {
		t.Errorf("null-word overflow: error = %v, want ErrBadBatchEncoding", err)
	}

	// Wrong schema: same width, different column type.
	other := MustSchema(
		Field{Name: "id", Type: TypeString},
		Field{Name: "score", Type: TypeFloat, Nullable: true},
		Field{Name: "name", Type: TypeString, Nullable: true},
		Field{Name: "active", Type: TypeBool},
		Field{Name: "at", Type: TypeTime, Nullable: true},
	)
	if _, err := DecodeBatch(other, enc); !errors.Is(err, ErrBadBatchEncoding) {
		t.Errorf("type mismatch error = %v, want ErrBadBatchEncoding", err)
	}
}

func TestPartitionStoreUnlimitedKeepsEverythingResident(t *testing.T) {
	schema := spillTestSchema(t)
	store, err := NewPartitionStore(schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rows := spillTestRows(60)
	for p := 0; p < 2; p++ {
		b, err := BatchFromRows(schema, rows[p*30:(p+1)*30])
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Append(p, b); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.SpilledBatches(); got != 0 {
		t.Fatalf("unlimited store spilled %d batches", got)
	}
	if got := store.PartitionRows(1); got != 30 {
		t.Fatalf("PartitionRows(1) = %d, want 30", got)
	}
	batches, err := store.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 || batches[0].Len() != 30 {
		t.Fatalf("partition 0 = %d batches", len(batches))
	}
}

func TestPartitionStoreSpillsAndRestores(t *testing.T) {
	schema := spillTestSchema(t)
	// Budget of one byte: every append immediately spills every batch.
	store, err := NewPartitionStore(schema, 3, WithMemoryBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rows := spillTestRows(90)
	want := make([]*ColumnBatch, 3)
	for p := 0; p < 3; p++ {
		b, err := BatchFromRows(schema, rows[p*30:(p+1)*30])
		if err != nil {
			t.Fatal(err)
		}
		want[p] = b
		if err := store.Append(p, b); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.SpilledBatches(); got != 3 {
		t.Fatalf("SpilledBatches = %d, want 3", got)
	}
	if store.SpilledBytes() <= 0 {
		t.Fatal("SpilledBytes must be positive after spilling")
	}
	for p := 0; p < 3; p++ {
		batches, err := store.Partition(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(batches) != 1 {
			t.Fatalf("partition %d = %d batches, want 1", p, len(batches))
		}
		assertBatchesEqual(t, batches[0], want[p])
	}
	if got := store.RestoredBatches(); got != 3 {
		t.Fatalf("RestoredBatches = %d, want 3", got)
	}
	// Reading must not unspill: a second read restores again.
	if _, err := store.Partition(0); err != nil {
		t.Fatal(err)
	}
	if got := store.RestoredBatches(); got != 4 {
		t.Fatalf("RestoredBatches after re-read = %d, want 4", got)
	}
}

// TestPartitionStoreBudgetEvictsColdestFirst appends three batches under a
// budget that fits two and checks the oldest spilled while the newer stayed
// resident.
func TestPartitionStoreBudgetEvictsColdestFirst(t *testing.T) {
	schema := MustSchema(Field{Name: "id", Type: TypeInt})
	mkBatch := func(base int) *ColumnBatch {
		rows := make([]Row, 100)
		for i := range rows {
			rows[i] = Row{int64(base + i)}
		}
		b, err := BatchFromRows(schema, rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := BatchMemSize(mkBatch(0))
	store, err := NewPartitionStore(schema, 1, WithMemoryBudget(2*one))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for i := 0; i < 3; i++ {
		if err := store.Append(0, mkBatch(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.SpilledBatches(); got != 1 {
		t.Fatalf("SpilledBatches = %d, want 1 (two fit the budget)", got)
	}
	// Order must be append order regardless of residency.
	var first []int64
	err = store.EachBatch(0, func(b *ColumnBatch) error {
		first = append(first, b.Column(0).Int(0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, []int64{0, 100, 200}) {
		t.Fatalf("batch order = %v, want [0 100 200]", first)
	}
}

func TestPartitionStoreFlattenPartition(t *testing.T) {
	schema := spillTestSchema(t)
	store, err := NewPartitionStore(schema, 1, WithMemoryBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rows := spillTestRows(50)
	for i := 0; i < 5; i++ {
		b, err := BatchFromRows(schema, rows[i*10:(i+1)*10])
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Append(0, b); err != nil {
			t.Fatal(err)
		}
	}
	flat, err := store.FlattenPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BatchFromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, flat, want)
}
