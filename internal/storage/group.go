package storage

// group.go implements the GroupTable behind the dataflow engine's columnar
// hash aggregation: a hash table mapping encoded group keys to dense group
// ids. Aggregation state then lives in typed vectors indexed by group id
// (sums in a []float64, counts in a []int64, …) instead of one boxed state
// object per group, so the aggregate update loop is a tight typed pass per
// aggregation rather than per-row interface dispatch.
//
// The table keys rows straight from column vectors through KeyEncoder
// (BatchKey/BatchHash), so its grouping is byte-identical to the row paths'.
// Alongside the id map it keeps each group's 64-bit key hash (for
// re-partitioning overflowing state under a memory budget) and the group's
// key columns as a small columnar batch built with typed copies, which the
// aggregation emit path shares zero-copy into its output batch.

// GroupTable assigns dense group ids to distinct keys, first-seen order: the
// first distinct key gets id 0, the next id 1, and so on, so iterating ids
// 0..Groups() reproduces the exact group emission order of the row-at-a-time
// aggregation. Not safe for concurrent use; build one per task.
type GroupTable struct {
	enc       *KeyEncoder
	ids       map[string]int32
	hashes    []uint64
	keys      []string
	keySchema *Schema
	keyIdx    []int
	keyRows   *ColumnBatch
	keyBytes  int64

	// codeCache maps a dictionary-backed key column's codes to group ids for
	// the frame currently being mapped (see MapRange): cacheDict identifies
	// the dictionary the cache was built for, -1 marks unseen codes. The
	// table's keys stay the full encoded strings — the cache only skips the
	// per-row encode+map-lookup for codes already seen in this frame.
	codeCache []int32
	cacheDict *string
}

// NewGroupTable returns an empty table. keySchema describes the key columns
// in output order; keyIdx maps each of them to its column index in the input
// batches; enc must encode exactly those input columns (the caller clones one
// per task, since encoders are not goroutine-safe).
func NewGroupTable(keySchema *Schema, keyIdx []int, enc *KeyEncoder) *GroupTable {
	return &GroupTable{
		enc:       enc,
		ids:       make(map[string]int32),
		keySchema: keySchema,
		keyIdx:    keyIdx,
		keyRows:   NewColumnBatch(keySchema, 0),
	}
}

// MapBatch assigns a group id to every row of b, appending the ids to ids[:0]
// and returning the extended slice (callers reuse one scratch slice across
// batches). Unseen keys are assigned the next dense id and their key columns
// are copied into the table's key batch with typed appends.
func (t *GroupTable) MapBatch(b *ColumnBatch, ids []int32) []int32 {
	return t.MapRange(b, 0, b.Len(), ids)
}

// MapRange maps rows [lo, hi) of b, so a budget-bounded consumer can check
// its resident state between sub-ranges of one large batch. ids[j] is the
// group id of row lo+j.
func (t *GroupTable) MapRange(b *ColumnBatch, lo, hi int, ids []int32) []int32 {
	ids = ids[:0]
	// Code-based fast path: a single dictionary-backed string key without
	// nulls maps each distinct code through the hash table once per frame;
	// repeats hit the dense code cache. Grouping stays byte-identical — the
	// table still stores the encoded string key — because within a frame code
	// equality is string equality (frame.go's sorted-dictionary invariant),
	// and a null-free column means codes alone determine the key.
	if len(t.keyIdx) == 1 {
		if col := &b.cols[t.keyIdx[0]]; len(col.dict) > 0 && len(col.nulls) == 0 {
			d0 := &col.dict[0]
			if t.cacheDict != d0 {
				t.codeCache = t.codeCache[:0]
				for range col.dict {
					t.codeCache = append(t.codeCache, -1)
				}
				t.cacheDict = d0
			}
			for i := lo; i < hi; i++ {
				code := col.codes[i]
				if id := t.codeCache[code]; id >= 0 {
					ids = append(ids, id)
					continue
				}
				id := t.lookupRow(b, i)
				t.codeCache[code] = id
				ids = append(ids, id)
			}
			return ids
		}
	}
	for i := lo; i < hi; i++ {
		ids = append(ids, t.lookupRow(b, i))
	}
	return ids
}

// lookupRow maps row i of b to its group id, inserting an unseen key with the
// next dense id and copying its key columns into the table's key batch.
func (t *GroupTable) lookupRow(b *ColumnBatch, i int) int32 {
	k := t.enc.BatchKey(b, i)
	id, ok := t.ids[string(k)]
	if !ok {
		ks := string(k)
		id = int32(len(t.hashes))
		t.ids[ks] = id
		t.hashes = append(t.hashes, HashBytes64(k))
		t.keys = append(t.keys, ks)
		t.keyBytes += int64(len(ks))
		for c, src := range t.keyIdx {
			t.keyRows.cols[c].appendFrom(&b.cols[src], i, t.keyRows.n)
		}
		t.keyRows.n++
	}
	return id
}

// Groups returns the number of distinct groups seen since the last Reset.
func (t *GroupTable) Groups() int { return len(t.hashes) }

// Hash returns group g's 64-bit key hash.
func (t *GroupTable) Hash(g int) uint64 { return t.hashes[g] }

// Key returns group g's encoded key bytes (as an immutable string).
func (t *GroupTable) Key(g int) string { return t.keys[g] }

// KeyRows returns the key columns of every group, one row per group id, in id
// order. The batch shares the table's storage and must be treated as
// read-only.
func (t *GroupTable) KeyRows() *ColumnBatch { return t.keyRows }

// MemSize estimates the table's resident footprint: the key batch, the
// encoded key bytes, and per-group fixed overhead (hash, slice headers, map
// entry). It is the quantity the spilling hash aggregation budgets against.
func (t *GroupTable) MemSize() int64 {
	const perGroup = 8 + 16 + 48 // hash + string header + map entry estimate
	return int64(len(t.hashes))*perGroup + t.keyBytes + BatchMemSize(t.keyRows)
}

// Reset drops every group and releases the backing storage, so a spill flush
// returns the table to its empty footprint.
func (t *GroupTable) Reset() {
	t.ids = make(map[string]int32)
	t.hashes = nil
	t.keys = nil
	t.keyBytes = 0
	t.keyRows = NewColumnBatch(t.keySchema, 0)
	// Cached ids are dense ids of the dropped generation — invalidate.
	t.cacheDict = nil
}
