package storage

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestValidateRow(t *testing.T) {
	s := testSchema(t)
	good := Row{int64(1), "alice", 9.5, true, int64(1700000000000)}
	if err := ValidateRow(s, good); err != nil {
		t.Fatalf("ValidateRow(good) = %v", err)
	}
	withNull := Row{int64(1), "alice", 9.5, nil, int64(0)}
	if err := ValidateRow(s, withNull); err != nil {
		t.Fatalf("nullable field must accept nil: %v", err)
	}
	badArity := Row{int64(1)}
	if err := ValidateRow(s, badArity); err == nil {
		t.Error("wrong arity must fail")
	}
	badType := Row{"not-an-int", "alice", 9.5, true, int64(0)}
	if err := ValidateRow(s, badType); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("type mismatch error = %v, want ErrTypeMismatch", err)
	}
	nullNotAllowed := Row{nil, "alice", 9.5, true, int64(0)}
	if err := ValidateRow(s, nullNotAllowed); err == nil {
		t.Error("nil in non-nullable field must fail")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{int64(1), "x"}
	c := r.Clone()
	c[0] = int64(2)
	if r[0].(int64) != 1 {
		t.Error("Clone must not share backing storage")
	}
}

func TestConversions(t *testing.T) {
	if AsString(nil) != "" || AsString("x") != "x" || AsString(int64(3)) != "3" ||
		AsString(2.5) != "2.5" || AsString(true) != "true" {
		t.Error("AsString misbehaves")
	}

	if f, ok := AsFloat(int64(4)); !ok || f != 4 {
		t.Error("AsFloat(int64) misbehaves")
	}
	if f, ok := AsFloat("3.5"); !ok || f != 3.5 {
		t.Error("AsFloat(string) misbehaves")
	}
	if f, ok := AsFloat(true); !ok || f != 1 {
		t.Error("AsFloat(bool) misbehaves")
	}
	if _, ok := AsFloat(nil); ok {
		t.Error("AsFloat(nil) must report !ok")
	}
	if _, ok := AsFloat("abc"); ok {
		t.Error("AsFloat(garbage) must report !ok")
	}

	if i, ok := AsInt(7.9); !ok || i != 7 {
		t.Error("AsInt(float) must truncate")
	}
	if i, ok := AsInt("42"); !ok || i != 42 {
		t.Error("AsInt(string) misbehaves")
	}
	if _, ok := AsInt("x"); ok {
		t.Error("AsInt(garbage) must report !ok")
	}

	if b, ok := AsBool(int64(1)); !ok || !b {
		t.Error("AsBool(int) misbehaves")
	}
	if b, ok := AsBool("false"); !ok || b {
		t.Error("AsBool(string) misbehaves")
	}
	if _, ok := AsBool("maybe"); ok {
		t.Error("AsBool(garbage) must report !ok")
	}
}

func TestTimeRoundTrip(t *testing.T) {
	now := time.Date(2017, 3, 21, 9, 30, 0, 0, time.UTC) // EDBT 2017 workshop day
	v := TimeValue(now)
	got, ok := AsTime(v)
	if !ok || !got.Equal(now) {
		t.Fatalf("AsTime(TimeValue(%v)) = %v, %v", now, got, ok)
	}
	if _, ok := AsTime("not-a-time"); ok {
		t.Error("AsTime(garbage) must report !ok")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		typ  FieldType
		in   Value
		want Value
	}{
		{TypeString, int64(5), "5"},
		{TypeInt, "12", int64(12)},
		{TypeFloat, int64(2), float64(2)},
		{TypeBool, int64(0), false},
		{TypeTime, "1700000000000", int64(1700000000000)},
	}
	for _, tc := range cases {
		got, err := Coerce(tc.typ, tc.in)
		if err != nil || got != tc.want {
			t.Errorf("Coerce(%v, %v) = %v, %v; want %v", tc.typ, tc.in, got, err, tc.want)
		}
	}
	if v, err := Coerce(TypeInt, nil); err != nil || v != nil {
		t.Error("Coerce(nil) must pass nil through")
	}
	if _, err := Coerce(TypeInt, "abc"); err == nil {
		t.Error("Coerce to int from garbage must fail")
	}
	if _, err := Coerce(TypeUnknown, int64(1)); err == nil {
		t.Error("Coerce to unknown type must fail")
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{nil, nil, 0},
		{nil, int64(1), -1},
		{int64(1), nil, 1},
		{int64(1), int64(2), -1},
		{2.5, 2.5, 0},
		{"a", "b", -1},
		{"b", "a", 1},
		{false, true, -1},
		{true, false, 1},
		{true, true, 0},
		{int64(3), 2.5, 1},
	}
	for _, tc := range cases {
		got := CompareValues(tc.a, tc.b)
		if sign(got) != tc.want {
			t.Errorf("CompareValues(%v, %v) = %d, want sign %d", tc.a, tc.b, got, tc.want)
		}
	}
	if !ValuesEqual("x", "x") || ValuesEqual(int64(1), int64(2)) {
		t.Error("ValuesEqual misbehaves")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// Property: CompareValues is antisymmetric for int64 values.
func TestCompareValuesPropertyAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return sign(CompareValues(a, b)) == -sign(CompareValues(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: int round-trips through Coerce(TypeString) + Coerce(TypeInt).
func TestCoercePropertyRoundTrip(t *testing.T) {
	f := func(x int64) bool {
		s, err := Coerce(TypeString, x)
		if err != nil {
			return false
		}
		back, err := Coerce(TypeInt, s)
		if err != nil {
			return false
		}
		return back.(int64) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
