package storage

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// stringHeavySchema/stringHeavyRows model the shuffle payloads the compressed
// codec targets: low-cardinality strings, sorted-ish ints, sparse nulls, and
// runs of bools.
func stringHeavySchema() *Schema {
	return MustSchema(
		Field{Name: "seq", Type: TypeInt},
		Field{Name: "region", Type: TypeString},
		Field{Name: "category", Type: TypeString, Nullable: true},
		Field{Name: "score", Type: TypeFloat, Nullable: true},
		Field{Name: "flag", Type: TypeBool},
	)
}

func stringHeavyRows(n int) []Row {
	regions := []string{"emea-central", "emea-west", "amer-north", "amer-south", "apac-east"}
	cats := []string{"electricity", "gas", "water", "telecom"}
	rows := make([]Row, n)
	for i := range rows {
		var cat Value = cats[i%len(cats)]
		if i%11 == 0 {
			cat = nil
		}
		var score Value = float64(i%97) / 7
		if i%13 == 0 {
			score = nil
		}
		rows[i] = Row{
			int64(1_000_000 + i), // sorted: delta-encodes to ~1 byte/row
			regions[(i/16)%len(regions)],
			cat,
			score,
			(i/32)%2 == 0, // long runs: RLE wins
		}
	}
	return rows
}

func mustBatch(t *testing.T, schema *Schema, rows []Row) *ColumnBatch {
	t.Helper()
	b, err := BatchFromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBatchCodecV2RoundTrip(t *testing.T) {
	for name, mk := range map[string]func(t *testing.T) *ColumnBatch{
		"string-heavy": func(t *testing.T) *ColumnBatch {
			return mustBatch(t, stringHeavySchema(), stringHeavyRows(500))
		},
		"mixed-null-nan": func(t *testing.T) *ColumnBatch {
			return mustBatch(t, spillTestSchema(t), spillTestRows(137))
		},
		"empty": func(t *testing.T) *ColumnBatch {
			return NewColumnBatch(stringHeavySchema(), 0)
		},
		"head-view": func(t *testing.T) *ColumnBatch {
			return mustBatch(t, spillTestSchema(t), spillTestRows(100)).Head(7)
		},
	} {
		t.Run(name, func(t *testing.T) {
			b := mk(t)
			enc := EncodeBatchOpts(nil, b, CodecOptions{Compress: true})
			if enc[1] != batchVersion2 {
				t.Fatalf("version byte = %d, want %d", enc[1], batchVersion2)
			}
			dec, err := DecodeBatch(b.Schema(), enc)
			if err != nil {
				t.Fatal(err)
			}
			want := b
			if b.Len() < 100 && b.Len() > 0 { // head view: compare against a true copy
				want = NewColumnBatch(b.Schema(), b.Len())
				for i := 0; i < b.Len(); i++ {
					want.AppendRowFrom(b, i)
				}
			}
			assertBatchesEqual(t, dec, want)
			// Deterministic: encoding twice and re-encoding the decoded batch
			// are byte-identical (the aggregation spill tests rely on this).
			if !bytes.Equal(enc, EncodeBatchOpts(nil, b, CodecOptions{Compress: true})) {
				t.Error("re-encoding the same batch produced different bytes")
			}
			if !bytes.Equal(enc, EncodeBatchOpts(nil, dec, CodecOptions{Compress: true})) {
				t.Error("re-encoding the decoded batch produced different bytes")
			}
		})
	}
}

// TestBatchCodecV2DictInvariant pins the decoded-column dictionary contract:
// sorted dictionary, codes resolving to the row strings.
func TestBatchCodecV2DictInvariant(t *testing.T) {
	b := mustBatch(t, stringHeavySchema(), stringHeavyRows(256))
	enc := EncodeBatchOpts(nil, b, CodecOptions{Compress: true})
	dec, err := DecodeBatch(b.Schema(), enc)
	if err != nil {
		t.Fatal(err)
	}
	col := dec.Column(1) // region: low cardinality, dictionary must win
	dict, codes := col.Dict(), col.Codes()
	if len(dict) == 0 {
		t.Fatal("region column decoded without a dictionary")
	}
	for i := 1; i < len(dict); i++ {
		if dict[i] <= dict[i-1] {
			t.Fatalf("dictionary not strictly sorted: %q after %q", dict[i], dict[i-1])
		}
	}
	for i := 0; i < dec.Len(); i++ {
		if dict[codes[i]] != col.Str(i) {
			t.Fatalf("row %d: dict[%d]=%q != %q", i, codes[i], dict[codes[i]], col.Str(i))
		}
	}
	if !DictShared(col, col) {
		t.Error("DictShared must hold for a column against itself")
	}
	enc2 := EncodeBatchOpts(nil, b, CodecOptions{Compress: true})
	dec2, err := DecodeBatch(b.Schema(), enc2)
	if err != nil {
		t.Fatal(err)
	}
	if DictShared(col, dec2.Column(1)) {
		t.Error("DictShared must distinguish dictionaries of different decoded frames")
	}
}

func TestBatchCodecV2CompressionWins(t *testing.T) {
	b := mustBatch(t, stringHeavySchema(), stringHeavyRows(2000))
	v1 := EncodeBatch(nil, b)
	v2 := EncodeBatchOpts(nil, b, CodecOptions{Compress: true})
	if int64(len(v1)) != EncodedSizeV1(b) {
		t.Fatalf("EncodedSizeV1 = %d, actual v1 encoding = %d", EncodedSizeV1(b), len(v1))
	}
	// The ≥2x acceptance bar for string-heavy spill workloads, pinned at the
	// codec level where it is deterministic.
	if len(v2)*2 > len(v1) {
		t.Fatalf("v2 frame is %d bytes, v1 is %d: want at least 2x reduction", len(v2), len(v1))
	}
	blocked := EncodeBatchOpts(nil, b, CodecOptions{Compress: true, Block: true})
	if len(blocked) > len(v2) {
		t.Fatalf("block layer grew the frame: %d > %d", len(blocked), len(v2))
	}
	dec, err := DecodeBatch(b.Schema(), blocked)
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, dec, b)
}

func TestBatchCodecV2RejectsCorruptInput(t *testing.T) {
	schema := stringHeavySchema()
	b := mustBatch(t, schema, stringHeavyRows(64))
	for _, opts := range []CodecOptions{{Compress: true}, {Compress: true, Block: true}} {
		enc := EncodeBatchOpts(nil, b, opts)
		// Every truncation must fail cleanly, never panic.
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeBatch(schema, enc[:cut]); err == nil {
				t.Fatalf("opts %+v: truncation at %d decoded successfully", opts, cut)
			}
		}
		// Single-byte corruption must error or decode — never panic. (Most
		// flips break framing; a few land in string payload bytes and decode
		// to different content, which is fine: the codec detects structure,
		// not payload bit-rot.)
		for i := 0; i < len(enc); i++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 0x5A
			_, _ = DecodeBatch(schema, mut)
		}
	}
	// Unknown flag bits are a hard error.
	enc := EncodeBatchOpts(nil, b, CodecOptions{Compress: true})
	bad := append([]byte(nil), enc...)
	bad[2] |= 0x80
	if _, err := DecodeBatch(schema, bad); !errors.Is(err, ErrBadBatchEncoding) {
		t.Errorf("unknown flags: error = %v, want ErrBadBatchEncoding", err)
	}
	// Unsupported future version.
	bad = append([]byte(nil), enc...)
	bad[1] = 9
	if _, err := DecodeBatch(schema, bad); !errors.Is(err, ErrBadBatchEncoding) {
		t.Errorf("future version: error = %v, want ErrBadBatchEncoding", err)
	}
}

func TestLZRoundTrip(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"short":      []byte("abc"),
		"repetitive": bytes.Repeat([]byte("abcdefgh"), 500),
		"runs":       bytes.Repeat([]byte{0}, 10000),
	}
	// Pseudo-random incompressible-ish data (fixed LCG, no global rand).
	rnd := make([]byte, 4096)
	state := uint32(12345)
	for i := range rnd {
		state = state*1664525 + 1013904223
		rnd[i] = byte(state >> 24)
	}
	cases["random"] = rnd
	for name, src := range cases {
		comp := lzCompress(nil, src)
		got, err := lzDecompress(nil, comp, len(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("%s: round trip mismatch (%d bytes in, %d out)", name, len(src), len(got))
		}
		if name == "repetitive" || name == "runs" {
			if len(comp)*4 > len(src) {
				t.Errorf("%s: compressed to %d of %d bytes, expected at least 4x", name, len(comp), len(src))
			}
		}
	}
}

func TestPartitionStoreCompressedCounters(t *testing.T) {
	schema := stringHeavySchema()
	store, err := NewPartitionStore(schema, 2,
		WithMemoryBudget(1), WithCodec(CodecOptions{Compress: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rows := stringHeavyRows(600)
	want := make([]*ColumnBatch, 2)
	for p := 0; p < 2; p++ {
		b := mustBatch(t, schema, rows[p*300:(p+1)*300])
		want[p] = b
		if err := store.Append(p, b); err != nil {
			t.Fatal(err)
		}
	}
	phys, logical := store.SpilledBytes(), store.SpilledLogicalBytes()
	if phys <= 0 || logical <= 0 {
		t.Fatalf("counters: physical=%d logical=%d, want both positive", phys, logical)
	}
	if phys*2 > logical {
		t.Fatalf("physical=%d logical=%d: want at least 2x compression on string-heavy data", phys, logical)
	}
	if got := store.FileBytes(); got != phys {
		t.Fatalf("FileBytes = %d, want %d (append-only file)", got, phys)
	}
	for p := 0; p < 2; p++ {
		batches, err := store.Partition(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(batches) != 1 {
			t.Fatalf("partition %d: %d batches", p, len(batches))
		}
		assertBatchesEqual(t, batches[0], want[p])
	}
}

func TestRunStoreCompressedMerge(t *testing.T) {
	schema := stringHeavySchema()
	cmp := func(a *ColumnBatch, ai int, b *ColumnBatch, bi int) int {
		as, bs := a.Column(1).Str(ai), b.Column(1).Str(bi)
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		}
		return 0
	}
	collect := func(codec CodecOptions) []Row {
		s, err := NewRunStore(schema, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.SetCodec(codec)
		rows := stringHeavyRows(3000)
		// Two runs, each pre-sorted by region (stable).
		for r := 0; r < 2; r++ {
			part := rows[r*1500 : (r+1)*1500]
			b := mustBatch(t, schema, part)
			sel := make([]int32, b.Len())
			for i := range sel {
				sel[i] = int32(i)
			}
			// insertion-stable sort by region
			for i := 1; i < len(sel); i++ {
				for j := i; j > 0 && cmp(b, int(sel[j]), b, int(sel[j-1])) < 0; j-- {
					sel[j], sel[j-1] = sel[j-1], sel[j]
				}
			}
			if err := s.AppendRun(b.Gather(sel)); err != nil {
				t.Fatal(err)
			}
		}
		if s.SpilledBatches() == 0 {
			t.Fatal("runs did not spill under a 1-byte budget")
		}
		var out []Row
		err = s.Merge(cmp, 512, func(b *ColumnBatch) error {
			out = append(out, b.Rows()...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if codec.Compress && s.SpilledLogicalBytes() <= s.SpilledBytes() {
			t.Fatalf("compressed runs: logical=%d physical=%d, want logical larger",
				s.SpilledLogicalBytes(), s.SpilledBytes())
		}
		return out
	}
	raw := collect(CodecOptions{})
	comp := collect(CodecOptions{Compress: true})
	if len(raw) != len(comp) {
		t.Fatalf("merge row counts differ: %d vs %d", len(raw), len(comp))
	}
	for i := range raw {
		for c := range raw[i] {
			if fmt.Sprint(raw[i][c]) != fmt.Sprint(comp[i][c]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, c, raw[i][c], comp[i][c])
			}
		}
	}
}

// TestGroupTableDictCodeCache pins that mapping a dictionary-backed frame
// through the code cache assigns exactly the ids the encoded-key path would.
func TestGroupTableDictCodeCache(t *testing.T) {
	schema := MustSchema(
		Field{Name: "region", Type: TypeString},
		Field{Name: "v", Type: TypeInt},
	)
	rows := make([]Row, 400)
	regions := []string{"gamma", "alpha", "beta", "delta"}
	for i := range rows {
		rows[i] = Row{regions[i%len(regions)], int64(i)}
	}
	b := mustBatch(t, schema, rows)
	dec, err := DecodeBatch(schema, EncodeBatchOpts(nil, b, CodecOptions{Compress: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Column(0).Dict()) == 0 {
		t.Fatal("expected a dictionary-backed key column")
	}
	keySchema := MustSchema(Field{Name: "region", Type: TypeString})
	mkTable := func() *GroupTable {
		enc, err := NewKeyEncoder(schema, "region")
		if err != nil {
			t.Fatal(err)
		}
		return NewGroupTable(keySchema, []int{0}, enc)
	}
	slow, fast := mkTable(), mkTable()
	slowIDs := slow.MapBatch(b, nil)   // no dictionary: encoded-key path
	fastIDs := fast.MapBatch(dec, nil) // dictionary: code-cache path
	if len(slowIDs) != len(fastIDs) {
		t.Fatalf("id counts differ: %d vs %d", len(slowIDs), len(fastIDs))
	}
	for i := range slowIDs {
		if slowIDs[i] != fastIDs[i] {
			t.Fatalf("row %d: id %d (slow) vs %d (fast)", i, slowIDs[i], fastIDs[i])
		}
	}
	if slow.Groups() != fast.Groups() {
		t.Fatalf("group counts differ: %d vs %d", slow.Groups(), fast.Groups())
	}
	for g := 0; g < slow.Groups(); g++ {
		if slow.Key(g) != fast.Key(g) {
			t.Fatalf("group %d keys differ", g)
		}
	}
	// After Reset the cache must not leak stale ids.
	fast.Reset()
	again := fast.MapBatch(dec, nil)
	for i := range again {
		if again[i] != slowIDs[i] {
			t.Fatalf("post-reset row %d: id %d, want %d", i, again[i], slowIDs[i])
		}
	}
}

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden frames")

// TestGoldenV1Frame round-trips a checked-in v1 spill frame: old spill files
// must keep decoding byte-for-byte after the codec bump.
func TestGoldenV1Frame(t *testing.T) {
	schema := spillTestSchema(t)
	want := mustBatch(t, schema, spillTestRows(53))
	path := filepath.Join("testdata", "golden_v1_frame.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, EncodeBatch(nil, want), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden frame (regenerate with -update-golden): %v", err)
	}
	dec, err := DecodeBatch(schema, raw)
	if err != nil {
		t.Fatal(err)
	}
	assertBatchesEqual(t, dec, want)
	// The v1 encoder itself must not drift either: the golden bytes are what
	// EncodeBatch still produces today.
	if !bytes.Equal(raw, EncodeBatch(nil, want)) {
		t.Error("EncodeBatch output drifted from the checked-in v1 golden frame")
	}
}
