package storage

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// Table is an in-memory, schema-validated collection of rows organised into a
// fixed number of hash partitions. Tables are safe for concurrent appends and
// reads; partition contents are immutable once read through Partition (readers
// receive the live slice, so writers must not run concurrently with the
// dataflow engine — the engine snapshots tables before executing).
type Table struct {
	name       string
	schema     *Schema
	partitions int
	keyField   string // field used for hash partitioning; "" = round robin

	mu     sync.RWMutex
	blocks [][]Row
	nextRR int // next round-robin partition
}

// TableOption configures table construction.
type TableOption func(*Table)

// WithPartitions sets the number of hash partitions (default 4, minimum 1).
func WithPartitions(n int) TableOption {
	return func(t *Table) {
		if n >= 1 {
			t.partitions = n
		}
	}
}

// WithPartitionKey selects the field used to route rows to partitions. Rows
// are hash-partitioned on the field's string representation. When unset, rows
// are distributed round-robin.
func WithPartitionKey(field string) TableOption {
	return func(t *Table) { t.keyField = field }
}

// NewTable creates an empty table with the given name and schema.
func NewTable(name string, schema *Schema, opts ...TableOption) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: table name must not be empty")
	}
	if schema == nil || schema.Len() == 0 {
		return nil, ErrEmptySchema
	}
	t := &Table{
		name:       name,
		schema:     schema,
		partitions: 4,
	}
	for _, opt := range opts {
		opt(t)
	}
	if t.keyField != "" && !schema.Has(t.keyField) {
		return nil, fmt.Errorf("%w: partition key %q", ErrUnknownField, t.keyField)
	}
	t.blocks = make([][]Row, t.partitions)
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Partitions returns the number of partitions.
func (t *Table) Partitions() int { return t.partitions }

// Append validates and adds a single row.
func (t *Table) Append(r Row) error {
	if err := ValidateRow(t.schema, r); err != nil {
		return fmt.Errorf("storage: append to %q: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.routeLocked(r)
	t.blocks[p] = append(t.blocks[p], r)
	return nil
}

// AppendAll validates and adds a batch of rows; it stops at the first invalid
// row and reports how many rows were appended.
func (t *Table) AppendAll(rows []Row) (int, error) {
	for i, r := range rows {
		if err := t.Append(r); err != nil {
			return i, err
		}
	}
	return len(rows), nil
}

func (t *Table) routeLocked(r Row) int {
	if t.keyField == "" {
		p := t.nextRR
		t.nextRR = (t.nextRR + 1) % t.partitions
		return p
	}
	idx := t.schema.IndexOf(t.keyField)
	return HashPartition(r[idx], t.partitions)
}

// HashPartition maps a value onto one of n partitions using FNV-1a over the
// value's canonical string form.
func HashPartition(v Value, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(AsString(v)))
	return int(h.Sum32() % uint32(n))
}

// NumRows returns the total number of rows across partitions.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, b := range t.blocks {
		n += len(b)
	}
	return n
}

// Partition returns the rows of partition p. The returned slice must be
// treated as read-only.
func (t *Table) Partition(p int) ([]Row, error) {
	if p < 0 || p >= t.partitions {
		return nil, fmt.Errorf("storage: partition %d out of range [0,%d)", p, t.partitions)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.blocks[p], nil
}

// Rows returns every row of the table in partition order. The rows are copies
// of the slice headers only; callers must not mutate row contents.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, 64)
	for _, b := range t.blocks {
		out = append(out, b...)
	}
	return out
}

// Scan invokes fn for every row until fn returns false or rows are exhausted.
func (t *Table) Scan(fn func(Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, b := range t.blocks {
		for _, r := range b {
			if !fn(r) {
				return
			}
		}
	}
}

// Clear removes every row while keeping schema and partitioning.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blocks = make([][]Row, t.partitions)
	t.nextRR = 0
}

// Repartition returns a new table with the same schema and rows distributed
// over n partitions keyed by keyField (or round-robin when keyField is empty).
func (t *Table) Repartition(n int, keyField string) (*Table, error) {
	opts := []TableOption{WithPartitions(n)}
	if keyField != "" {
		opts = append(opts, WithPartitionKey(keyField))
	}
	out, err := NewTable(t.name, t.schema, opts...)
	if err != nil {
		return nil, err
	}
	for _, r := range t.Rows() {
		if err := out.Append(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Catalog is a registry of named tables, mirroring the data-source registry of
// the TOREADOR platform.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register adds a table to the catalog. Registering a name twice is an error.
func (c *Catalog) Register(t *Table) error {
	if t == nil {
		return fmt.Errorf("storage: cannot register nil table")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[t.Name()]; exists {
		return fmt.Errorf("storage: table %q already registered", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// Replace registers or overwrites a table.
func (c *Catalog) Replace(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name()] = t
}

// Lookup returns the named table.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: table %q not found", name)
	}
	return t, nil
}

// Names returns the registered table names (unordered).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// Drop removes the named table; dropping an absent table is a no-op.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, name)
}
