package storage

// spill.go implements the spill-to-disk layer under the columnar batch
// representation: a compact binary codec that serialises ColumnBatch typed
// vectors (round-trip exact, including float bit patterns and null bitmaps)
// and a size-bounded PartitionStore that keeps hot batches in memory and
// spills cold ones to a temp file once a configurable byte budget is
// exceeded, restoring them transparently on read. The dataflow engine
// accumulates shuffle buckets, sort inputs and join/group-by build sides into
// a store instead of bare slices, which lets wide operators run over inputs
// larger than the memory budget.

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
)

// Batch codec framing.
const (
	batchMagic   byte = 0xCB // "column batch"
	batchVersion byte = 1
)

// ErrBadBatchEncoding is returned when DecodeBatch meets bytes that are not a
// valid encoded batch (or one encoded for a different schema).
var ErrBadBatchEncoding = fmt.Errorf("storage: bad batch encoding")

// BatchMemSize estimates the in-memory footprint of a batch in bytes: the
// typed vectors, string payloads, and null bitmap words. It is the unit the
// PartitionStore budgets against.
func BatchMemSize(b *ColumnBatch) int64 {
	if b == nil {
		return 0
	}
	n := int64(b.n)
	var total int64
	for c := range b.cols {
		col := &b.cols[c]
		switch col.typ {
		case TypeInt, TypeTime, TypeFloat:
			total += 8 * n
		case TypeBool:
			total += n
		case TypeString:
			// Slice header per string plus payload bytes.
			total += 16 * n
			for i := 0; i < b.n; i++ {
				total += int64(len(col.strs[i]))
			}
		}
		total += 8 * int64(len(col.nulls))
	}
	return total
}

// EncodeBatch appends the binary encoding of b to dst and returns the
// extended slice. The format is self-describing per column — a type tag and a
// byte-length prefix ahead of each column payload — and round-trip exact:
// floats are stored as their raw IEEE-754 bits, so -0.0 and NaN payloads
// survive a spill/restore cycle unchanged.
//
// Layout:
//
//	magic, version
//	uvarint rows, uvarint cols
//	per column:
//	  type byte
//	  uvarint payload length
//	  payload: uvarint null words + words (LE) + values
//	    int/time/float: rows × 8 bytes (BE)
//	    bool:           ceil(rows/8) packed bytes
//	    string:         per row uvarint length + bytes
func EncodeBatch(dst []byte, b *ColumnBatch) []byte {
	dst = append(dst, batchMagic, batchVersion)
	dst = binary.AppendUvarint(dst, uint64(b.n))
	dst = binary.AppendUvarint(dst, uint64(len(b.cols)))
	var payload []byte
	for c := range b.cols {
		col := &b.cols[c]
		payload = appendColumnPayload(payload[:0], col, b.n)
		dst = append(dst, byte(col.typ))
		dst = binary.AppendUvarint(dst, uint64(len(payload)))
		dst = append(dst, payload...)
	}
	return dst
}

// appendColumnPayload encodes the first n rows of col (vectors may be longer
// than n for Head views, which share parent storage).
func appendColumnPayload(dst []byte, col *Column, n int) []byte {
	// Null bitmap: only the words covering rows [0,n), with stray bits past n
	// in the last word masked off (a Head view shares its parent's bitmap).
	words := (n + 63) / 64
	if words > len(col.nulls) {
		words = len(col.nulls)
	}
	dst = binary.AppendUvarint(dst, uint64(words))
	for w := 0; w < words; w++ {
		word := col.nulls[w]
		if hi := n - w*64; hi < 64 {
			word &= (1 << uint(hi)) - 1
		}
		dst = binary.LittleEndian.AppendUint64(dst, word)
	}
	switch col.typ {
	case TypeInt, TypeTime:
		for i := 0; i < n; i++ {
			dst = binary.BigEndian.AppendUint64(dst, uint64(col.ints[i]))
		}
	case TypeFloat:
		for i := 0; i < n; i++ {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(col.floats[i]))
		}
	case TypeBool:
		packed := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if col.bools[i] {
				packed[i>>3] |= 1 << uint(i&7)
			}
		}
		dst = append(dst, packed...)
	case TypeString:
		for i := 0; i < n; i++ {
			dst = binary.AppendUvarint(dst, uint64(len(col.strs[i])))
			dst = append(dst, col.strs[i]...)
		}
	}
	return dst
}

// DecodeBatch reconstructs a batch encoded by EncodeBatch or EncodeBatchOpts.
// The version byte selects the codec — v1 raw frames and v2 compressed frames
// (frame.go) both decode, so spill files written before the codec bump stay
// readable. The schema must be the one the batch was encoded under; column
// count and per-column types are verified against it.
func DecodeBatch(schema *Schema, data []byte) (*ColumnBatch, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: decode needs a schema", ErrEmptySchema)
	}
	if len(data) < 2 || data[0] != batchMagic {
		return nil, fmt.Errorf("%w: missing magic/version header", ErrBadBatchEncoding)
	}
	if data[1] == batchVersion2 {
		if len(data) < 3 {
			return nil, fmt.Errorf("%w: truncated frame flags", ErrBadBatchEncoding)
		}
		flags := data[2]
		body := data[3:]
		if flags&^frameFlagBlock != 0 {
			return nil, fmt.Errorf("%w: unknown frame flags %#x", ErrBadBatchEncoding, flags)
		}
		if flags&frameFlagBlock != 0 {
			rawLen, k := binary.Uvarint(body)
			if k <= 0 || rawLen > maxFrameBodyBytes {
				return nil, fmt.Errorf("%w: bad block size", ErrBadBatchEncoding)
			}
			decoded, err := lzDecompress(make([]byte, 0, rawLen), body[k:], int(rawLen))
			if err != nil {
				return nil, err
			}
			body = decoded
		}
		return decodeBatchV2(schema, body)
	}
	if data[1] != batchVersion {
		return nil, fmt.Errorf("%w: unsupported codec version %d", ErrBadBatchEncoding, data[1])
	}
	data = data[2:]
	rows, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("%w: truncated row count", ErrBadBatchEncoding)
	}
	data = data[k:]
	// Cheapest possible column footprint is one bit per row (packed bools),
	// so a row count past 8× the remaining bytes cannot be backed by any
	// payload — reject it here instead of letting a corrupt frame drive a
	// huge allocation below.
	if rows > uint64(len(data))*8 {
		return nil, fmt.Errorf("%w: row count %d exceeds payload capacity", ErrBadBatchEncoding, rows)
	}
	cols, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("%w: truncated column count", ErrBadBatchEncoding)
	}
	data = data[k:]
	if int(cols) != schema.Len() {
		return nil, fmt.Errorf("%w: batch has %d columns, schema %s has %d",
			ErrBadBatchEncoding, cols, schema, schema.Len())
	}
	n := int(rows)
	b := &ColumnBatch{schema: schema, cols: make([]Column, cols), n: n}
	for c := range b.cols {
		if len(data) < 1 {
			return nil, fmt.Errorf("%w: truncated column %d", ErrBadBatchEncoding, c)
		}
		typ := FieldType(data[0])
		if want := schema.Field(c).Type; typ != want {
			return nil, fmt.Errorf("%w: column %d encoded as %s, schema expects %s",
				ErrBadBatchEncoding, c, typ, want)
		}
		data = data[1:]
		plen, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < plen {
			return nil, fmt.Errorf("%w: truncated column %d payload", ErrBadBatchEncoding, c)
		}
		data = data[k:]
		if err := decodeColumnPayload(&b.cols[c], typ, data[:plen], n); err != nil {
			return nil, fmt.Errorf("column %d: %w", c, err)
		}
		data = data[plen:]
	}
	return b, nil
}

func decodeColumnPayload(col *Column, typ FieldType, data []byte, n int) error {
	col.typ = typ
	words, k := binary.Uvarint(data)
	// Compare by division, not words*8: a forged word count near 2^64 would
	// overflow the multiplication and slip past the bound.
	if k <= 0 || words > uint64(len(data)-k)/8 {
		return fmt.Errorf("%w: truncated null bitmap", ErrBadBatchEncoding)
	}
	data = data[k:]
	if words > 0 {
		col.nulls = make(nullBitmap, words)
		for w := range col.nulls {
			col.nulls[w] = binary.LittleEndian.Uint64(data[w*8:])
		}
		data = data[words*8:]
	}
	switch typ {
	case TypeInt, TypeTime:
		if len(data) != n*8 {
			return fmt.Errorf("%w: int column payload is %d bytes, want %d", ErrBadBatchEncoding, len(data), n*8)
		}
		col.ints = make([]int64, n)
		for i := range col.ints {
			col.ints[i] = int64(binary.BigEndian.Uint64(data[i*8:]))
		}
	case TypeFloat:
		if len(data) != n*8 {
			return fmt.Errorf("%w: float column payload is %d bytes, want %d", ErrBadBatchEncoding, len(data), n*8)
		}
		col.floats = make([]float64, n)
		for i := range col.floats {
			col.floats[i] = math.Float64frombits(binary.BigEndian.Uint64(data[i*8:]))
		}
	case TypeBool:
		if len(data) != (n+7)/8 {
			return fmt.Errorf("%w: bool column payload is %d bytes, want %d", ErrBadBatchEncoding, len(data), (n+7)/8)
		}
		col.bools = make([]bool, n)
		for i := range col.bools {
			col.bools[i] = data[i>>3]&(1<<uint(i&7)) != 0
		}
	case TypeString:
		col.strs = make([]string, n)
		for i := range col.strs {
			l, k := binary.Uvarint(data)
			if k <= 0 || uint64(len(data)-k) < l {
				return fmt.Errorf("%w: truncated string row %d", ErrBadBatchEncoding, i)
			}
			col.strs[i] = string(data[k : k+int(l)])
			data = data[k+int(l):]
		}
		if len(data) != 0 {
			return fmt.Errorf("%w: %d trailing bytes after string column", ErrBadBatchEncoding, len(data))
		}
	default:
		return fmt.Errorf("%w: unsupported column type %d", ErrBadBatchEncoding, typ)
	}
	return nil
}

// StoreOption configures a PartitionStore.
type StoreOption func(*PartitionStore)

// WithMemoryBudget bounds the bytes of batch data the store keeps resident
// (estimated by BatchMemSize). Once an append pushes the resident total past
// the budget, the coldest batches — oldest appends first — are encoded to the
// store's spill file and their memory released. bytes <= 0 means unlimited
// (the default): nothing ever spills.
func WithMemoryBudget(bytes int64) StoreOption {
	return func(s *PartitionStore) { s.budget = bytes }
}

// WithCodec selects the batch codec spilled batches are written with. The
// zero value (the default) is the raw v1 codec; CodecOptions{Compress: true}
// writes v2 compressed frames. Reads auto-detect the version, so the option
// only affects writes.
func WithCodec(c CodecOptions) StoreOption {
	return func(s *PartitionStore) { s.codec = c }
}

// WithSpillDir places the store's spill temp file in dir instead of the
// system temp directory. "" (the default) keeps os.TempDir(); the directory
// must already exist.
func WithSpillDir(dir string) StoreOption {
	return func(s *PartitionStore) { s.spillDir = dir }
}

// batchSlot is one sealed batch of a partition: resident (batch != nil) or
// spilled (an offset/length range of the spill file).
type batchSlot struct {
	batch *ColumnBatch
	mem   int64 // BatchMemSize estimate while resident
	rows  int
	off   int64 // spill-file location once spilled
	len   int64
	cold  bool
}

// PartitionStore holds the sealed column batches of a fixed number of
// partitions, spilling cold batches to a single temp file when a memory
// budget is configured and exceeded. Appends are expected from one goroutine
// (the shuffle gather loop); reads (Partition, EachBatch) are safe from
// concurrent task goroutines once appending is done, and restores go through
// ReadAt so readers never contend on a file cursor. Close releases the spill
// file; the store is single-use.
type PartitionStore struct {
	mu     sync.Mutex
	schema *Schema
	parts  [][]*batchSlot
	rows   []int

	budget   int64
	codec    CodecOptions
	spillDir string
	closed   bool
	resident int64
	// appendOrder tracks resident slots oldest-first, so spilling evicts the
	// coldest batches.
	appendOrder []*batchSlot

	file     *os.File
	fileSize int64

	spilledBatches  int64
	spilledBytes    int64
	logicalBytes    int64
	restoredBatches int64

	encodeBuf []byte
}

// NewPartitionStore returns an empty store over nParts partitions of batches
// sharing the given schema.
func NewPartitionStore(schema *Schema, nParts int, opts ...StoreOption) (*PartitionStore, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: partition store needs a schema", ErrEmptySchema)
	}
	if nParts < 1 {
		nParts = 1
	}
	s := &PartitionStore{
		schema: schema,
		parts:  make([][]*batchSlot, nParts),
		rows:   make([]int, nParts),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Partitions returns the number of partitions.
func (s *PartitionStore) Partitions() int { return len(s.parts) }

// PartitionRows returns the number of rows accumulated in partition p.
func (s *PartitionStore) PartitionRows(p int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows[p]
}

// SpilledBatches returns the number of batches written to the spill file.
func (s *PartitionStore) SpilledBatches() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilledBatches
}

// SpilledBytes returns the cumulative physical bytes written to the spill
// file: every eviction adds its encoded (possibly compressed) length, and
// restores never subtract — this is write traffic, not occupancy.
func (s *PartitionStore) SpilledBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilledBytes
}

// SpilledLogicalBytes returns the cumulative logical bytes spilled: the size
// the same batches would occupy under the raw v1 codec. The physical/logical
// ratio is the spill compression ratio; with compression off the two are
// equal.
func (s *PartitionStore) SpilledLogicalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logicalBytes
}

// FileBytes returns the bytes currently occupied by the spill file. The file
// is append-only and never truncated, so this is also the store's
// physical-on-disk high-water mark (and equals SpilledBytes for a single
// store; the distinction matters at the run level, where stores come and go).
func (s *PartitionStore) FileBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fileSize
}

// RestoredBatches returns the number of spilled batches decoded back on read.
func (s *PartitionStore) RestoredBatches() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restoredBatches
}

// Append seals b into partition p. The batch must not be mutated afterwards
// (the store may hold a reference until it spills). Under budget pressure the
// coldest resident batches — possibly b itself — are spilled before Append
// returns, so resident bytes stay at or under the budget whenever batches are
// individually smaller than it.
func (s *PartitionStore) Append(p int, b *ColumnBatch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := &batchSlot{batch: b, mem: BatchMemSize(b), rows: b.Len()}
	s.parts[p] = append(s.parts[p], slot)
	s.rows[p] += b.Len()
	s.resident += slot.mem
	s.appendOrder = append(s.appendOrder, slot)
	return s.enforceBudgetLocked()
}

// enforceBudgetLocked spills oldest resident slots until the resident total
// fits the budget. Caller holds s.mu.
func (s *PartitionStore) enforceBudgetLocked() error {
	if s.budget <= 0 {
		return nil
	}
	i := 0
	for s.resident > s.budget && i < len(s.appendOrder) {
		slot := s.appendOrder[i]
		i++
		if err := s.spillLocked(slot); err != nil {
			return err
		}
	}
	s.appendOrder = s.appendOrder[i:]
	return nil
}

// spillLocked encodes one slot to the spill file and releases its memory.
func (s *PartitionStore) spillLocked(slot *batchSlot) error {
	if s.closed {
		return fmt.Errorf("storage: spill to closed store")
	}
	if s.file == nil {
		f, err := os.CreateTemp(s.spillDir, "toreador-spill-*.bin")
		if err != nil {
			return fmt.Errorf("storage: create spill file: %w", err)
		}
		s.file = f
	}
	s.encodeBuf = EncodeBatchOpts(s.encodeBuf[:0], slot.batch, s.codec)
	if _, err := s.file.WriteAt(s.encodeBuf, s.fileSize); err != nil {
		return fmt.Errorf("storage: write spill file: %w", err)
	}
	logical := int64(len(s.encodeBuf))
	if s.codec.Compress {
		logical = EncodedSizeV1(slot.batch)
	}
	slot.off = s.fileSize
	slot.len = int64(len(s.encodeBuf))
	slot.cold = true
	slot.batch = nil
	s.fileSize += slot.len
	s.resident -= slot.mem
	s.spilledBatches++
	s.spilledBytes += slot.len
	s.logicalBytes += logical
	return nil
}

// restore decodes one spilled slot from the file. Restored batches are handed
// to the caller without being re-cached: consumers stream them once, and
// re-caching would immediately push the store back over budget.
func (s *PartitionStore) restore(off, length int64) (*ColumnBatch, error) {
	buf := make([]byte, length)
	if _, err := s.file.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: read spill file: %w", err)
	}
	b, err := DecodeBatch(s.schema, buf)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.restoredBatches++
	s.mu.Unlock()
	return b, nil
}

// EachBatch streams the batches of partition p in append order, restoring
// spilled ones transparently. At most one restored batch is alive at a time,
// so a streaming consumer's extra memory is bounded by the largest batch.
func (s *PartitionStore) EachBatch(p int, f func(*ColumnBatch) error) error {
	s.mu.Lock()
	slots := s.parts[p]
	s.mu.Unlock()
	for _, slot := range slots {
		b := slot.batch
		if slot.cold {
			var err error
			if b, err = s.restore(slot.off, slot.len); err != nil {
				return err
			}
		}
		if err := f(b); err != nil {
			return err
		}
	}
	return nil
}

// Partition materialises every batch of partition p, restoring spilled ones.
func (s *PartitionStore) Partition(p int) ([]*ColumnBatch, error) {
	var out []*ColumnBatch
	err := s.EachBatch(p, func(b *ColumnBatch) error {
		out = append(out, b)
		return nil
	})
	return out, err
}

// FlattenPartition concatenates partition p into one batch (typed copies),
// restoring spilled batches one at a time — the build-side read path of the
// spilled hash join. A partition holding a single resident batch (the
// unbudgeted shuffle's shape) is returned directly without copying; callers
// must treat the result as read-only either way.
func (s *PartitionStore) FlattenPartition(p int) (*ColumnBatch, error) {
	s.mu.Lock()
	if slots := s.parts[p]; len(slots) == 1 && !slots[0].cold {
		b := slots[0].batch
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()
	out := NewColumnBatch(s.schema, s.PartitionRows(p))
	err := s.EachBatch(p, func(b *ColumnBatch) error {
		for i := 0; i < b.Len(); i++ {
			out.AppendRowFrom(b, i)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close releases the spill file (if one was created). Idempotent: a second
// call is a no-op, never a double remove. The store must not be used for
// appends afterwards.
func (s *PartitionStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.file == nil {
		return nil
	}
	name := s.file.Name()
	err := s.file.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	s.file = nil
	return err
}
