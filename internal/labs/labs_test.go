package labs

import (
	"context"
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sla"
	"repro/internal/workload"
)

// smallLab builds a lab with reduced data sizes so tests stay fast.
func smallLab(t *testing.T) *Lab {
	t.Helper()
	lab, err := NewLab(Config{
		Seed:   7,
		Sizing: workload.Sizing{Customers: 250, Meters: 2, Days: 3, Users: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestBuiltinChallengesAreValid(t *testing.T) {
	challenges := BuiltinChallenges()
	if len(challenges) != 5 {
		t.Fatalf("challenges = %d, want 5 (one per vertical)", len(challenges))
	}
	verticals := map[workload.Vertical]bool{}
	for _, ch := range challenges {
		if err := ch.Campaign.Validate(); err != nil {
			t.Errorf("challenge %s campaign invalid: %v", ch.ID, err)
		}
		if ch.Narrative == "" || ch.Title == "" || len(ch.DegreesOfFreedom) == 0 {
			t.Errorf("challenge %s is missing trainee-facing documentation", ch.ID)
		}
		if len(ch.Campaign.Objectives) < 2 {
			t.Errorf("challenge %s needs multiple objectives for meaningful trade-offs", ch.ID)
		}
		verticals[ch.Vertical] = true
	}
	if len(verticals) != 5 {
		t.Errorf("challenges cover %d verticals, want all 5", len(verticals))
	}
}

func TestNewLabAndChallengeLookup(t *testing.T) {
	lab := smallLab(t)
	if got := len(lab.Challenges()); got != 5 {
		t.Fatalf("lab challenges = %d, want 5", got)
	}
	ch, err := lab.Challenge("telco-churn")
	if err != nil || ch.Vertical != workload.VerticalTelco {
		t.Errorf("Challenge lookup = %+v, %v", ch, err)
	}
	if _, err := lab.Challenge("ghost"); !errors.Is(err, ErrUnknownChallenge) {
		t.Errorf("unknown challenge err = %v", err)
	}
	if lab.Data() == nil || lab.Compiler() == nil || lab.Planner() == nil {
		t.Error("lab accessors must be populated")
	}
	// Every challenge's data must be resolvable from the lab catalog.
	for _, ch := range lab.Challenges() {
		for _, src := range ch.Campaign.Sources {
			if _, err := lab.Data().Lookup(src.Table); err != nil {
				t.Errorf("challenge %s source %s not registered: %v", ch.ID, src.Table, err)
			}
		}
	}
}

func TestAlternativesPerChallenge(t *testing.T) {
	lab := smallLab(t)
	for _, ch := range lab.Challenges() {
		alternatives, err := lab.Alternatives(ch.ID)
		if err != nil {
			t.Errorf("alternatives for %s: %v", ch.ID, err)
			continue
		}
		if len(alternatives) < 4 {
			t.Errorf("challenge %s has only %d alternatives; trial-and-error needs options", ch.ID, len(alternatives))
		}
		compliant := 0
		for _, a := range alternatives {
			if a.Compliant() {
				compliant++
			}
		}
		if compliant == 0 {
			t.Errorf("challenge %s has no compliant alternative", ch.ID)
		}
	}
	if _, err := lab.Alternatives("ghost"); !errors.Is(err, ErrUnknownChallenge) {
		t.Error("unknown challenge must fail")
	}
}

func TestAttemptAndScoring(t *testing.T) {
	lab := smallLab(t)
	alternatives, err := lab.Alternatives("telco-churn")
	if err != nil {
		t.Fatal(err)
	}
	// Find one compliant and one non-compliant alternative with the same
	// analytics service family to compare scoring.
	compliantIdx, nonCompliantIdx := -1, -1
	for i, a := range alternatives {
		if a.Compliant() && compliantIdx < 0 {
			compliantIdx = i
		}
		if !a.Compliant() && nonCompliantIdx < 0 {
			nonCompliantIdx = i
		}
	}
	if compliantIdx < 0 || nonCompliantIdx < 0 {
		t.Fatal("need both compliant and non-compliant alternatives")
	}
	ctx := context.Background()
	good, err := lab.Attempt(ctx, "alice", "telco-churn", compliantIdx)
	if err != nil {
		t.Fatal(err)
	}
	if good.Score <= 0 || good.Score > 1 {
		t.Errorf("score = %v, want (0,1]", good.Score)
	}
	if good.Report == nil || good.Fingerprint == "" {
		t.Error("attempt must carry the run report and fingerprint")
	}
	bad, err := lab.Attempt(ctx, "alice", "telco-churn", nonCompliantIdx)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Score >= good.Score {
		t.Errorf("non-compliant attempt score %.3f must be below compliant %.3f", bad.Score, good.Score)
	}
	if _, err := lab.Attempt(ctx, "alice", "telco-churn", len(alternatives)+5); !errors.Is(err, ErrUnknownAlternative) {
		t.Error("out-of-range alternative must fail")
	}
}

func TestScoreClampsAndPenalises(t *testing.T) {
	rep := &runner.Report{Compliant: true, Evaluation: sla.Evaluation{Score: 0.9, Feasible: true}}
	if got := score(rep); got != 0.9 {
		t.Errorf("score = %v", got)
	}
	rep.Compliant = false
	if got := score(rep); got >= 0.9*0.31 || got <= 0 {
		t.Errorf("non-compliant score = %v, want 0.27-ish", got)
	}
	if got := score(&runner.Report{Compliant: true, Evaluation: sla.Evaluation{Score: 1.4}}); got != 1 {
		t.Errorf("score must clamp to 1, got %v", got)
	}
}

func TestSessionCompareAndLeaderboard(t *testing.T) {
	lab := smallLab(t)
	session := NewSession(lab)
	ctx := context.Background()
	alternatives, err := lab.Alternatives("retail-baskets")
	if err != nil {
		t.Fatal(err)
	}
	// Two trainees, two attempts each on the same challenge.
	indices := []int{0, 1}
	if len(alternatives) < 2 {
		t.Fatal("need at least two alternatives")
	}
	for _, trainee := range []string{"alice", "bob"} {
		for _, idx := range indices {
			if _, err := session.Submit(ctx, trainee, "retail-baskets", idx); err != nil {
				t.Fatal(err)
			}
		}
	}
	attempts := session.Attempts()
	if len(attempts) != 4 {
		t.Fatalf("attempts = %d, want 4", len(attempts))
	}
	if attempts[1].Number != 2 {
		t.Errorf("second attempt of alice numbered %d, want 2", attempts[1].Number)
	}
	aliceAttempts := session.AttemptsFor("alice", "retail-baskets")
	if len(aliceAttempts) != 2 {
		t.Errorf("alice attempts = %d", len(aliceAttempts))
	}
	rows := Compare(attempts)
	if len(rows) != 4 {
		t.Fatalf("comparison rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Score > rows[i-1].Score {
			t.Error("comparison must be sorted by descending score")
		}
	}
	board := session.Leaderboard()
	if len(board) != 2 {
		t.Fatalf("leaderboard entries = %d, want 2", len(board))
	}
	if board[0].BestTotal < board[1].BestTotal {
		t.Error("leaderboard must be sorted by descending best total")
	}
	for _, e := range board {
		if e.Attempts != 2 || e.Challenges != 1 {
			t.Errorf("leaderboard entry = %+v", e)
		}
	}
	// Compare must skip nil attempts defensively.
	if got := Compare([]*Attempt{nil}); len(got) != 0 {
		t.Error("nil attempts must be skipped")
	}
}

func TestSimulateTraineeGuidedBeatsRandom(t *testing.T) {
	lab := smallLab(t)
	ctx := context.Background()
	const attempts = 4
	guided, err := lab.SimulateTrainee(ctx, "telco-churn", TraineeGuided, attempts, 3)
	if err != nil {
		t.Fatal(err)
	}
	random, err := lab.SimulateTrainee(ctx, "telco-churn", TraineeRandom, attempts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(guided) != attempts || len(random) != attempts {
		t.Fatalf("curve lengths = %d, %d", len(guided), len(random))
	}
	// Curves must be monotone non-decreasing (best-so-far).
	for i := 1; i < attempts; i++ {
		if guided[i] < guided[i-1] || random[i] < random[i-1] {
			t.Error("learning curves must be monotone non-decreasing")
		}
	}
	// The guided trainee must reach at least the random trainee's final score
	// already at the first attempt (the platform recommends a strong option
	// immediately).
	if guided[0]+1e-9 < random[0] {
		t.Errorf("guided first attempt %.3f should not trail random first attempt %.3f", guided[0], random[0])
	}
	if guided[attempts-1]+1e-9 < random[attempts-1] {
		t.Errorf("guided final %.3f must be >= random final %.3f", guided[attempts-1], random[attempts-1])
	}
}

func TestSimulateTraineeValidation(t *testing.T) {
	lab := smallLab(t)
	ctx := context.Background()
	if _, err := lab.SimulateTrainee(ctx, "telco-churn", TraineeGuided, 0, 1); err == nil {
		t.Error("zero attempts must fail")
	}
	if _, err := lab.SimulateTrainee(ctx, "ghost", TraineeGuided, 1, 1); !errors.Is(err, ErrUnknownChallenge) {
		t.Error("unknown challenge must fail")
	}
	if _, err := lab.SimulateTrainee(ctx, "telco-churn", TraineeStrategy("psychic"), 1, 1); err == nil {
		t.Error("unknown strategy must fail")
	}
	// Requesting more attempts than alternatives clamps rather than failing.
	curve, err := lab.SimulateTrainee(ctx, "web-funnel", TraineeGreedy, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	alts, _ := lab.Alternatives("web-funnel")
	if len(curve) != len(alts) {
		t.Errorf("curve length %d, want clamp to %d alternatives", len(curve), len(alts))
	}
	if len(TraineeStrategies()) != 3 {
		t.Error("expected 3 trainee strategies")
	}
}

func TestChallengeObjectivesDriveScores(t *testing.T) {
	// The churn challenge weights accuracy and privacy as hard objectives;
	// the chosen best alternative by the platform must be feasible on
	// estimates for the challenge to be solvable.
	lab := smallLab(t)
	ch, _ := lab.Challenge("telco-churn")
	result, err := lab.Compiler().Compile(ch.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Chosen.Evaluation.Feasible {
		t.Errorf("built-in churn challenge is unsolvable on estimates:\n%s", result.Chosen.Evaluation.Summary())
	}
	if _, ok := ch.Campaign.ObjectiveFor(model.IndicatorPrivacy); !ok {
		t.Error("churn challenge must include a privacy objective")
	}
}
