// Package labs implements TOREADOR Labs: the training environment the paper
// demonstrates. It offers a set of challenges built on simplified vertical
// scenarios; trainees pick design alternatives for a challenge, execute them
// ("trial and error"), compare the consequences of their choices across runs,
// and are scored against the challenge's business objectives.
package labs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/runner"
	"repro/internal/sla"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Errors returned by the lab.
var (
	ErrUnknownChallenge   = errors.New("labs: unknown challenge")
	ErrUnknownAlternative = errors.New("labs: unknown alternative")
)

// Challenge is one Labs exercise: a vertical scenario plus a declarative
// campaign skeleton with business objectives, and the design dimensions the
// trainee is expected to explore.
type Challenge struct {
	// ID identifies the challenge.
	ID string
	// Title is the short display name.
	Title string
	// Vertical names the scenario the challenge runs on.
	Vertical workload.Vertical
	// Narrative is the business-perspective description shown to trainees.
	Narrative string
	// Campaign is the declarative skeleton (goal, sources, objectives,
	// regime) the trainee's alternatives are compiled from.
	Campaign *model.Campaign
	// DegreesOfFreedom documents the design choices left to the trainee.
	DegreesOfFreedom []string
}

// BuiltinChallenges returns the five standard Labs challenges, one per
// vertical scenario.
func BuiltinChallenges() []Challenge {
	return []Challenge{
		{
			ID:       "telco-churn",
			Title:    "Reduce churn at a telco operator",
			Vertical: workload.VerticalTelco,
			Narrative: "The operator loses a quarter of its subscribers every year. Build a campaign that " +
				"predicts which subscribers are about to churn, while respecting the subscribers' privacy.",
			Campaign: &model.Campaign{
				Name:     "telco-churn",
				Vertical: string(workload.VerticalTelco),
				Goal: model.Goal{
					Task:           model.TaskClassification,
					Description:    "predict churned subscribers from usage and support history",
					TargetTable:    "telco_customers",
					LabelColumn:    "churned",
					FeatureColumns: []string{"tenure_months", "monthly_charge", "support_calls", "dropped_calls", "data_usage_gb"},
				},
				Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
				Objectives: []model.Objective{
					// The accuracy bar sits above what the majority-class
					// baseline reaches on this scenario, so only genuinely
					// trained classifiers satisfy the hard objective.
					{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.78, Hard: true, Weight: 3},
					{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 2.0, Weight: 2},
					{Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 30_000},
					{Indicator: model.IndicatorPrivacy, Comparison: model.AtLeast, Target: 0.8, Hard: true},
				},
				Regime: model.RegimePseudonymize,
			},
			DegreesOfFreedom: []string{"classifier choice", "anonymisation strength", "normalisation", "display style"},
		},
		{
			ID:       "payment-fraud",
			Title:    "Spot fraudulent card payments",
			Vertical: workload.VerticalFinance,
			Narrative: "A payment processor needs near-real-time detection of fraudulent transactions " +
				"without exporting raw card data to analysts.",
			Campaign: &model.Campaign{
				Name:     "payment-fraud",
				Vertical: string(workload.VerticalFinance),
				Goal: model.Goal{
					Task:        model.TaskAnomaly,
					Description: "flag anomalous transactions for manual review",
					TargetTable: "payments",
					ValueColumn: "amount",
					LabelColumn: "fraud",
				},
				Sources: []model.DataSource{{Table: "payments", ContainsPersonalData: true, Region: "eu"}},
				Objectives: []model.Objective{
					{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.3, Hard: true, Weight: 3},
					{Indicator: model.IndicatorFreshness, Comparison: model.AtMost, Target: 5, Weight: 2},
					{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 3.0},
					{Indicator: model.IndicatorPrivacy, Comparison: model.AtLeast, Target: 0.8, Hard: true},
				},
				Regime:      model.RegimePseudonymize,
				Preferences: model.Preferences{Streaming: true},
			},
			DegreesOfFreedom: []string{"detector choice", "batch vs streaming deployment", "anonymisation strength"},
		},
		{
			ID:       "energy-forecast",
			Title:    "Forecast household energy demand",
			Vertical: workload.VerticalEnergy,
			Narrative: "A utility wants day-ahead consumption forecasts from smart-meter data; household " +
				"identities are personal data under a strict national regulation.",
			Campaign: &model.Campaign{
				Name:     "energy-forecast",
				Vertical: string(workload.VerticalEnergy),
				Goal: model.Goal{
					Task:        model.TaskForecasting,
					Description: "forecast hourly consumption",
					TargetTable: "meter_readings",
					ValueColumn: "kwh",
					TimeColumn:  "read_at",
				},
				Sources: []model.DataSource{{Table: "meter_readings", ContainsPersonalData: true, Region: "eu"}},
				Objectives: []model.Objective{
					{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.5, Hard: true, Weight: 3},
					{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 2.0},
					{Indicator: model.IndicatorPrivacy, Comparison: model.AtLeast, Target: 0.9, Hard: true},
				},
				Regime: model.RegimeStrict,
			},
			DegreesOfFreedom: []string{"forecasting model", "anonymisation strength", "display style"},
		},
		{
			ID:       "retail-baskets",
			Title:    "Find cross-selling opportunities in baskets",
			Vertical: workload.VerticalRetail,
			Narrative: "A grocery chain wants association rules between products to drive shelf placement; " +
				"basket data carries no personal information.",
			Campaign: &model.Campaign{
				Name:     "retail-baskets",
				Vertical: string(workload.VerticalRetail),
				Goal: model.Goal{
					Task:              model.TaskAssociation,
					Description:       "mine product association rules",
					TargetTable:       "retail_baskets",
					ItemColumn:        "product",
					TransactionColumn: "basket_id",
				},
				Sources: []model.DataSource{{Table: "retail_baskets", Region: "eu"}},
				Objectives: []model.Objective{
					{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.5, Hard: true, Weight: 2},
					{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 2.0},
					{Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 30_000},
				},
				Regime: model.RegimeNone,
			},
			DegreesOfFreedom: []string{"support/confidence thresholds", "display style", "deployment"},
		},
		{
			ID:       "web-funnel",
			Title:    "Understand the purchase funnel",
			Vertical: workload.VerticalWeb,
			Narrative: "An e-commerce site wants session-level conversion analysis over its clickstream; " +
				"IP addresses are personal data.",
			Campaign: &model.Campaign{
				Name:     "web-funnel",
				Vertical: string(workload.VerticalWeb),
				Goal: model.Goal{
					Task:        model.TaskSessionization,
					Description: "group events into sessions and measure conversion",
					TargetTable: "clickstream",
					TimeColumn:  "occurred_at",
					LabelColumn: "converted",
				},
				Sources: []model.DataSource{{Table: "clickstream", ContainsPersonalData: true, Region: "eu"}},
				Objectives: []model.Objective{
					{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.5, Hard: true},
					{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 1.0, Weight: 2},
					{Indicator: model.IndicatorPrivacy, Comparison: model.AtLeast, Target: 0.8, Hard: true},
				},
				Regime: model.RegimePseudonymize,
			},
			DegreesOfFreedom: []string{"session timeout", "anonymisation strength", "deployment"},
		},
	}
}

// Config controls lab construction.
type Config struct {
	// Seed drives scenario generation and simulated trainees.
	Seed int64
	// Sizing controls how much data each scenario gets (zero = defaults).
	Sizing workload.Sizing
}

// Lab is a running TOREADOR Labs instance: generated scenario data, the
// model-driven compiler, the pipeline runner and the registered challenges.
type Lab struct {
	data       *storage.Catalog
	compiler   *core.Compiler
	runner     *runner.Runner
	planner    *planner.Planner
	challenges map[string]Challenge
	order      []string
	seed       int64
}

// NewLab generates every vertical scenario and registers the built-in
// challenges.
func NewLab(cfg Config) (*Lab, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	data := storage.NewCatalog()
	gen := workload.NewGenerator(cfg.Seed)
	for _, v := range workload.Verticals() {
		sc, err := gen.Generate(v, cfg.Sizing)
		if err != nil {
			return nil, fmt.Errorf("labs: generate %s scenario: %w", v, err)
		}
		if err := sc.Register(data); err != nil {
			return nil, err
		}
	}
	compiler, err := core.NewCompiler(data)
	if err != nil {
		return nil, err
	}
	run, err := runner.New(data, runner.WithSeed(cfg.Seed))
	if err != nil {
		return nil, err
	}
	plan, err := planner.New(compiler)
	if err != nil {
		return nil, err
	}
	lab := &Lab{
		data:       data,
		compiler:   compiler,
		runner:     run,
		planner:    plan,
		challenges: map[string]Challenge{},
		seed:       cfg.Seed,
	}
	for _, ch := range BuiltinChallenges() {
		if err := ch.Campaign.Validate(); err != nil {
			return nil, fmt.Errorf("labs: built-in challenge %s: %w", ch.ID, err)
		}
		lab.challenges[ch.ID] = ch
		lab.order = append(lab.order, ch.ID)
	}
	return lab, nil
}

// Data exposes the lab's data catalog (read-only use).
func (l *Lab) Data() *storage.Catalog { return l.data }

// Compiler exposes the lab's compiler.
func (l *Lab) Compiler() *core.Compiler { return l.compiler }

// Planner exposes the lab's planner.
func (l *Lab) Planner() *planner.Planner { return l.planner }

// Challenges returns the registered challenges in registration order.
func (l *Lab) Challenges() []Challenge {
	out := make([]Challenge, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, l.challenges[id])
	}
	return out
}

// Challenge returns the challenge with the given id.
func (l *Lab) Challenge(id string) (Challenge, error) {
	ch, ok := l.challenges[id]
	if !ok {
		return Challenge{}, fmt.Errorf("%w: %q", ErrUnknownChallenge, id)
	}
	return ch, nil
}

// Alternatives enumerates the design space of a challenge.
func (l *Lab) Alternatives(challengeID string) ([]core.Alternative, error) {
	ch, err := l.Challenge(challengeID)
	if err != nil {
		return nil, err
	}
	alternatives, _, err := l.compiler.EnumerateAlternatives(ch.Campaign)
	if err != nil {
		return nil, fmt.Errorf("labs: enumerate %s: %w", challengeID, err)
	}
	return alternatives, nil
}

// Attempt is one executed trainee choice.
type Attempt struct {
	// Trainee who submitted the attempt.
	Trainee string
	// ChallengeID the attempt belongs to.
	ChallengeID string
	// AlternativeIndex identifies the chosen alternative within the
	// challenge's enumerated design space.
	AlternativeIndex int
	// Fingerprint of the chosen alternative.
	Fingerprint string
	// Report is the measured execution report.
	Report *runner.Report
	// Score is the Labs score of the attempt in [0,1].
	Score float64
	// Number is the attempt's 1-based sequence number for this trainee and
	// challenge.
	Number int
	// Elapsed is the run wall time.
	Elapsed time.Duration
}

// score converts a measured run into the Labs score: the SLA score of the
// measured indicators, sharply discounted for non-compliant pipelines.
func score(report *runner.Report) float64 {
	s := report.Evaluation.Score
	if !report.Compliant {
		s *= 0.3
	}
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Attempt executes the alternative with the given index from the challenge's
// design space on behalf of trainee and records the attempt.
func (l *Lab) Attempt(ctx context.Context, trainee, challengeID string, alternativeIndex int) (*Attempt, error) {
	ch, err := l.Challenge(challengeID)
	if err != nil {
		return nil, err
	}
	alternatives, err := l.Alternatives(challengeID)
	if err != nil {
		return nil, err
	}
	if alternativeIndex < 0 || alternativeIndex >= len(alternatives) {
		return nil, fmt.Errorf("%w: index %d of %d", ErrUnknownAlternative, alternativeIndex, len(alternatives))
	}
	alt := alternatives[alternativeIndex]
	start := time.Now()
	report, err := l.runner.Run(ctx, ch.Campaign, alt)
	if err != nil {
		return nil, fmt.Errorf("labs: run attempt: %w", err)
	}
	attempt := &Attempt{
		Trainee:          trainee,
		ChallengeID:      challengeID,
		AlternativeIndex: alternativeIndex,
		Fingerprint:      alt.Fingerprint(),
		Report:           report,
		Score:            score(report),
		Elapsed:          time.Since(start),
	}
	return attempt, nil
}

// ComparisonRow is one line of the side-by-side comparison of attempts, the
// capability the paper highlights as missing from professional platforms
// ("compare different runs of a composite BDA").
type ComparisonRow struct {
	Fingerprint string
	Trainee     string
	Score       float64
	Compliant   bool
	Feasible    bool
	Measured    sla.Measurement
}

// Compare lays attempts side by side, sorted by descending score.
func Compare(attempts []*Attempt) []ComparisonRow {
	rows := make([]ComparisonRow, 0, len(attempts))
	for _, a := range attempts {
		if a == nil || a.Report == nil {
			continue
		}
		rows = append(rows, ComparisonRow{
			Fingerprint: a.Fingerprint,
			Trainee:     a.Trainee,
			Score:       a.Score,
			Compliant:   a.Report.Compliant,
			Feasible:    a.Report.Evaluation.Feasible,
			Measured:    a.Report.Measured,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Score > rows[j].Score })
	return rows
}

// Session records a trainee's attempts across challenges and produces the
// leaderboard.
type Session struct {
	lab      *Lab
	attempts []*Attempt
}

// NewSession returns an empty session on the lab.
func NewSession(lab *Lab) *Session { return &Session{lab: lab} }

// Submit runs and records an attempt.
func (s *Session) Submit(ctx context.Context, trainee, challengeID string, alternativeIndex int) (*Attempt, error) {
	attempt, err := s.lab.Attempt(ctx, trainee, challengeID, alternativeIndex)
	if err != nil {
		return nil, err
	}
	attempt.Number = s.countFor(trainee, challengeID) + 1
	s.attempts = append(s.attempts, attempt)
	return attempt, nil
}

func (s *Session) countFor(trainee, challengeID string) int {
	n := 0
	for _, a := range s.attempts {
		if a.Trainee == trainee && a.ChallengeID == challengeID {
			n++
		}
	}
	return n
}

// Attempts returns every recorded attempt in submission order.
func (s *Session) Attempts() []*Attempt {
	return append([]*Attempt(nil), s.attempts...)
}

// AttemptsFor returns the attempts of one trainee on one challenge.
func (s *Session) AttemptsFor(trainee, challengeID string) []*Attempt {
	var out []*Attempt
	for _, a := range s.attempts {
		if a.Trainee == trainee && a.ChallengeID == challengeID {
			out = append(out, a)
		}
	}
	return out
}

// LeaderboardEntry is one row of the session leaderboard.
type LeaderboardEntry struct {
	Trainee    string
	Challenges int
	Attempts   int
	// BestTotal is the sum over challenges of the trainee's best score.
	BestTotal float64
}

// Leaderboard ranks trainees by the sum of their best per-challenge scores.
func (s *Session) Leaderboard() []LeaderboardEntry {
	type key struct{ trainee, challenge string }
	best := map[key]float64{}
	attempts := map[string]int{}
	for _, a := range s.attempts {
		k := key{a.Trainee, a.ChallengeID}
		if a.Score > best[k] {
			best[k] = a.Score
		}
		attempts[a.Trainee]++
	}
	perTrainee := map[string]*LeaderboardEntry{}
	for k, score := range best {
		e, ok := perTrainee[k.trainee]
		if !ok {
			e = &LeaderboardEntry{Trainee: k.trainee}
			perTrainee[k.trainee] = e
		}
		e.Challenges++
		e.BestTotal += score
	}
	var out []LeaderboardEntry
	for trainee, e := range perTrainee {
		e.Attempts = attempts[trainee]
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BestTotal != out[j].BestTotal {
			return out[i].BestTotal > out[j].BestTotal
		}
		return out[i].Trainee < out[j].Trainee
	})
	return out
}

// TraineeStrategy models how a simulated trainee picks the next alternative.
type TraineeStrategy string

// Supported simulated-trainee strategies.
const (
	// TraineeRandom tries alternatives in random order.
	TraineeRandom TraineeStrategy = "random"
	// TraineeGreedy tries compliant alternatives in descending estimated
	// score order but only looks at the static estimates (no platform
	// guidance about measured results).
	TraineeGreedy TraineeStrategy = "greedy"
	// TraineeGuided follows the platform's recommendation order (compliant,
	// feasible, best estimated evaluation first) — the behaviour TOREADOR
	// Labs is designed to teach.
	TraineeGuided TraineeStrategy = "guided"
)

// TraineeStrategies returns every simulated strategy.
func TraineeStrategies() []TraineeStrategy {
	return []TraineeStrategy{TraineeRandom, TraineeGreedy, TraineeGuided}
}

// SimulateTrainee runs maxAttempts attempts on the challenge using the given
// strategy and returns the best score seen after each attempt (a learning
// curve, reproduced as Figure 4).
func (l *Lab) SimulateTrainee(ctx context.Context, challengeID string, strategy TraineeStrategy, maxAttempts int, seed int64) ([]float64, error) {
	if maxAttempts < 1 {
		return nil, fmt.Errorf("labs: maxAttempts must be positive")
	}
	ch, err := l.Challenge(challengeID)
	if err != nil {
		return nil, err
	}
	alternatives, err := l.Alternatives(challengeID)
	if err != nil {
		return nil, err
	}
	order, err := attemptOrder(ch, alternatives, strategy, seed)
	if err != nil {
		return nil, err
	}
	if maxAttempts > len(order) {
		maxAttempts = len(order)
	}
	curve := make([]float64, 0, maxAttempts)
	best := 0.0
	for i := 0; i < maxAttempts; i++ {
		alt := alternatives[order[i]]
		report, err := l.runner.Run(ctx, ch.Campaign, alt)
		if err != nil {
			return nil, fmt.Errorf("labs: simulate attempt %d: %w", i+1, err)
		}
		if s := score(report); s > best {
			best = s
		}
		curve = append(curve, best)
	}
	return curve, nil
}

// attemptOrder decides the order in which a simulated trainee explores the
// design space.
func attemptOrder(ch Challenge, alternatives []core.Alternative, strategy TraineeStrategy, seed int64) ([]int, error) {
	indices := make([]int, len(alternatives))
	for i := range indices {
		indices[i] = i
	}
	switch strategy {
	case TraineeRandom:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(indices), func(i, j int) { indices[i], indices[j] = indices[j], indices[i] })
		return indices, nil
	case TraineeGreedy:
		// Estimated score order, ignoring compliance (the unguided trainee
		// does not know the regulatory consequences yet).
		sort.SliceStable(indices, func(a, b int) bool {
			return alternatives[indices[a]].Evaluation.Score > alternatives[indices[b]].Evaluation.Score
		})
		return indices, nil
	case TraineeGuided:
		sort.SliceStable(indices, func(a, b int) bool {
			ia, ib := alternatives[indices[a]], alternatives[indices[b]]
			if ia.Compliant() != ib.Compliant() {
				return ia.Compliant()
			}
			if cmp := sla.Compare(ia.Evaluation, ib.Evaluation); cmp != 0 {
				return cmp > 0
			}
			ca, _ := ia.Estimates.Get(model.IndicatorCost)
			cb, _ := ib.Estimates.Get(model.IndicatorCost)
			return ca < cb
		})
		return indices, nil
	default:
		return nil, fmt.Errorf("labs: unknown trainee strategy %q", strategy)
	}
}
