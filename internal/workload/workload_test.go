package workload

import (
	"testing"

	"repro/internal/storage"
)

func TestTelcoCustomersDeterministic(t *testing.T) {
	a, err := NewGenerator(42).TelcoCustomers(200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(42).TelcoCustomers(200)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 200 || b.NumRows() != 200 {
		t.Fatalf("rows = %d / %d, want 200", a.NumRows(), b.NumRows())
	}
	ra, rb := a.Rows(), b.Rows()
	for i := range ra {
		for j := range ra[i] {
			if ra[i][j] != rb[i][j] {
				t.Fatalf("row %d differs between identically seeded generators: %v vs %v", i, ra[i], rb[i])
			}
		}
	}
}

func TestTelcoCustomersChurnSignal(t *testing.T) {
	tbl, err := NewGenerator(7).TelcoCustomers(3000)
	if err != nil {
		t.Fatal(err)
	}
	schema := tbl.Schema()
	churnIdx := schema.IndexOf("churned")
	supportIdx := schema.IndexOf("support_calls")
	churned, total := 0, 0
	var supportChurned, supportStayed float64
	var nChurned, nStayed float64
	tbl.Scan(func(r storage.Row) bool {
		total++
		s, _ := storage.AsFloat(r[supportIdx])
		if r[churnIdx].(bool) {
			churned++
			supportChurned += s
			nChurned++
		} else {
			supportStayed += s
			nStayed++
		}
		return true
	})
	rate := float64(churned) / float64(total)
	if rate < 0.10 || rate > 0.60 {
		t.Errorf("churn rate = %.2f, want a realistic 0.10-0.60", rate)
	}
	if nChurned == 0 || nStayed == 0 {
		t.Fatal("both classes must be present")
	}
	if supportChurned/nChurned <= supportStayed/nStayed {
		t.Error("churned customers should average more support calls than retained ones")
	}
}

func TestTelcoCDRs(t *testing.T) {
	tbl, err := NewGenerator(1).TelcoCDRs(50, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() < 100 {
		t.Errorf("expected roughly 300 CDRs, got %d", tbl.NumRows())
	}
	custIdx := tbl.Schema().IndexOf("customer_id")
	tbl.Scan(func(r storage.Row) bool {
		id := r[custIdx].(int64)
		if id < 1 || id > 50 {
			t.Errorf("customer_id %d outside generated population", id)
			return false
		}
		return true
	})
}

func TestRetailBasketsAffinity(t *testing.T) {
	tbl, err := NewGenerator(3).RetailBaskets(800)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() < 800*2 {
		t.Fatalf("rows = %d, expected at least 2 items per basket", tbl.NumRows())
	}
	// Pasta→tomatoes affinity: among baskets containing pasta, tomatoes must
	// appear more often than in the overall population.
	prodIdx := tbl.Schema().IndexOf("product")
	basketIdx := tbl.Schema().IndexOf("basket_id")
	contents := map[int64]map[string]bool{}
	tbl.Scan(func(r storage.Row) bool {
		b := r[basketIdx].(int64)
		if contents[b] == nil {
			contents[b] = map[string]bool{}
		}
		contents[b][r[prodIdx].(string)] = true
		return true
	})
	withPasta, pastaAndTomato, withTomato := 0, 0, 0
	for _, items := range contents {
		if items["pasta"] {
			withPasta++
			if items["tomatoes"] {
				pastaAndTomato++
			}
		}
		if items["tomatoes"] {
			withTomato++
		}
	}
	if withPasta == 0 {
		t.Fatal("no basket contains pasta")
	}
	condProb := float64(pastaAndTomato) / float64(withPasta)
	baseProb := float64(withTomato) / float64(len(contents))
	if condProb <= baseProb {
		t.Errorf("P(tomatoes|pasta)=%.2f should exceed P(tomatoes)=%.2f", condProb, baseProb)
	}
}

func TestSmartMeterReadings(t *testing.T) {
	tbl, err := NewGenerator(9).SmartMeterReadings(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 * 3 * 24
	if tbl.NumRows() != want {
		t.Fatalf("rows = %d, want %d", tbl.NumRows(), want)
	}
	kwhIdx := tbl.Schema().IndexOf("kwh")
	anomalyIdx := tbl.Schema().IndexOf("anomaly")
	var anomalies int
	var anomalyMean, normalMean float64
	var nAnom, nNorm float64
	tbl.Scan(func(r storage.Row) bool {
		kwh := r[kwhIdx].(float64)
		if kwh < 0 {
			t.Errorf("negative consumption %v", kwh)
		}
		if r[anomalyIdx].(bool) {
			anomalies++
			anomalyMean += kwh
			nAnom++
		} else {
			normalMean += kwh
			nNorm++
		}
		return true
	})
	if nAnom > 0 && anomalyMean/nAnom <= normalMean/nNorm {
		t.Error("anomalous readings must be larger on average")
	}
	if anomalies > want/10 {
		t.Errorf("too many anomalies: %d of %d", anomalies, want)
	}
}

func TestClickstream(t *testing.T) {
	tbl, err := NewGenerator(11).Clickstream(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() < 40 {
		t.Fatalf("rows = %d, want at least one event per user", tbl.NumRows())
	}
	urlIdx := tbl.Schema().IndexOf("url")
	convIdx := tbl.Schema().IndexOf("converted")
	tbl.Scan(func(r storage.Row) bool {
		if r[convIdx].(bool) && r[urlIdx].(string) != "/checkout" {
			t.Errorf("conversion on non-checkout page %v", r[urlIdx])
			return false
		}
		return true
	})
}

func TestPayments(t *testing.T) {
	tbl, err := NewGenerator(13).Payments(4000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4000 {
		t.Fatalf("rows = %d, want 4000", tbl.NumRows())
	}
	fraudIdx := tbl.Schema().IndexOf("fraud")
	amountIdx := tbl.Schema().IndexOf("amount")
	var fraudCount int
	var fraudMean, legitMean float64
	var nf, nl float64
	tbl.Scan(func(r storage.Row) bool {
		amt := r[amountIdx].(float64)
		if r[fraudIdx].(bool) {
			fraudCount++
			fraudMean += amt
			nf++
		} else {
			legitMean += amt
			nl++
		}
		return true
	})
	rate := float64(fraudCount) / 4000
	if rate < 0.02 || rate > 0.10 {
		t.Errorf("fraud rate = %.3f, want around 0.05", rate)
	}
	if fraudMean/nf <= legitMean/nl {
		t.Error("fraudulent transactions must be larger on average")
	}
	if _, err := NewGenerator(1).Payments(10, 1.5); err == nil {
		t.Error("invalid fraud rate must be rejected")
	}
}

func TestGenerateAllVerticals(t *testing.T) {
	sz := Sizing{Customers: 200, Meters: 3, Days: 2, Users: 30}
	for _, v := range Verticals() {
		sc, err := NewGenerator(5).Generate(v, sz)
		if err != nil {
			t.Fatalf("Generate(%s): %v", v, err)
		}
		if sc.Vertical != v || len(sc.Tables) == 0 {
			t.Errorf("scenario %s malformed: %+v", v, sc)
		}
		for _, tbl := range sc.Tables {
			if tbl.NumRows() == 0 {
				t.Errorf("scenario %s table %s is empty", v, tbl.Name())
			}
		}
		if sc.LabelTable != "" {
			lt, err := sc.Table(sc.LabelTable)
			if err != nil {
				t.Errorf("scenario %s label table: %v", v, err)
			} else if !lt.Schema().Has(sc.LabelField) {
				t.Errorf("scenario %s label field %q missing", v, sc.LabelField)
			}
		}
	}
	if _, err := NewGenerator(5).Generate(Vertical("bogus"), sz); err == nil {
		t.Error("unknown vertical must be rejected")
	}
}

func TestScenarioRegisterAndLookup(t *testing.T) {
	sc, err := NewGenerator(5).Generate(VerticalTelco, Sizing{Customers: 100, Meters: 1, Days: 1, Users: 1})
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	if err := sc.Register(cat); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := cat.Lookup("telco_customers"); err != nil {
		t.Errorf("catalog lookup after register: %v", err)
	}
	if err := sc.Register(cat); err == nil {
		t.Error("double registration must fail")
	}
	if _, err := sc.Table("nonexistent"); err == nil {
		t.Error("unknown table lookup must fail")
	}
}

func TestSizingNormalization(t *testing.T) {
	n := (Sizing{}).normalized()
	d := DefaultSizing()
	if n != d {
		t.Errorf("zero sizing normalizes to %+v, want defaults %+v", n, d)
	}
	custom := Sizing{Customers: 10, Meters: 1, Days: 1, Users: 1}
	if custom.normalized() != custom {
		t.Error("explicit sizing must pass through unchanged")
	}
}

func TestGeneratorPartitionOption(t *testing.T) {
	tbl, err := NewGenerator(1, WithDataPartitions(7)).TelcoCustomers(10)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Partitions() != 7 {
		t.Errorf("partitions = %d, want 7", tbl.Partitions())
	}
	tbl2, err := NewGenerator(1, WithDataPartitions(-1)).TelcoCustomers(10)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Partitions() != 4 {
		t.Errorf("invalid partition option should keep default 4, got %d", tbl2.Partitions())
	}
}
