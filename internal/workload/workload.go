// Package workload generates deterministic synthetic datasets for the five
// vertical scenarios used by the TOREADOR Labs challenges: telco churn,
// retail baskets, smart-meter readings, web clickstream and payment fraud.
//
// The TOREADOR paper evaluates its approach on "simplified but real-life
// vertical scenarios"; the original industrial data is not available, so these
// generators act as the substitute documented in DESIGN.md. Each generator is
// seeded explicitly, making every test, example and benchmark reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/storage"
)

// Vertical identifies one of the Labs' application domains.
type Vertical string

// The supported verticals.
const (
	VerticalTelco   Vertical = "telco"
	VerticalRetail  Vertical = "retail"
	VerticalEnergy  Vertical = "energy"
	VerticalWeb     Vertical = "web"
	VerticalFinance Vertical = "finance"
)

// Verticals lists every supported vertical in a stable order.
func Verticals() []Vertical {
	return []Vertical{VerticalTelco, VerticalRetail, VerticalEnergy, VerticalWeb, VerticalFinance}
}

// baseTime anchors all generated timestamps; fixed so runs are reproducible.
var baseTime = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)

// Generator produces the datasets of a single vertical scenario.
type Generator struct {
	rng        *rand.Rand
	partitions int
}

// Option configures a Generator.
type Option func(*Generator)

// WithDataPartitions sets the partition count of generated tables.
func WithDataPartitions(n int) Option {
	return func(g *Generator) {
		if n >= 1 {
			g.partitions = n
		}
	}
}

// NewGenerator returns a generator seeded with seed.
func NewGenerator(seed int64, opts ...Option) *Generator {
	g := &Generator{
		rng:        rand.New(rand.NewSource(seed)),
		partitions: 4,
	}
	for _, opt := range opts {
		opt(g)
	}
	return g
}

// ---------------------------------------------------------------------------
// Telco churn
// ---------------------------------------------------------------------------

// TelcoCustomerSchema describes a telco subscriber with a churn label.
func TelcoCustomerSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Field{Name: "customer_id", Type: storage.TypeInt},
		storage.Field{Name: "name", Type: storage.TypeString, Sensitivity: storage.Personal},
		storage.Field{Name: "region", Type: storage.TypeString},
		storage.Field{Name: "plan", Type: storage.TypeString},
		storage.Field{Name: "tenure_months", Type: storage.TypeInt},
		storage.Field{Name: "monthly_charge", Type: storage.TypeFloat},
		storage.Field{Name: "support_calls", Type: storage.TypeInt},
		storage.Field{Name: "dropped_calls", Type: storage.TypeInt},
		storage.Field{Name: "data_usage_gb", Type: storage.TypeFloat},
		storage.Field{Name: "churned", Type: storage.TypeBool},
	)
}

// TelcoCDRSchema describes a call-detail record.
func TelcoCDRSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Field{Name: "cdr_id", Type: storage.TypeInt},
		storage.Field{Name: "customer_id", Type: storage.TypeInt},
		storage.Field{Name: "callee", Type: storage.TypeString, Sensitivity: storage.Personal},
		storage.Field{Name: "started_at", Type: storage.TypeTime},
		storage.Field{Name: "duration_s", Type: storage.TypeInt},
		storage.Field{Name: "dropped", Type: storage.TypeBool},
		storage.Field{Name: "cell_id", Type: storage.TypeInt},
	)
}

var regions = []string{"north", "south", "east", "west", "centre"}
var plans = []string{"basic", "standard", "premium", "enterprise"}

// TelcoCustomers generates n subscribers. Roughly a quarter of the population
// churns; churn probability grows with support calls and dropped calls and
// shrinks with tenure, so classifiers have real signal to learn.
func (g *Generator) TelcoCustomers(n int) (*storage.Table, error) {
	tbl, err := storage.NewTable("telco_customers", TelcoCustomerSchema(),
		storage.WithPartitions(g.partitions), storage.WithPartitionKey("customer_id"))
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		tenure := int64(g.rng.Intn(72) + 1)
		support := int64(poisson(g.rng, 1.5))
		dropped := int64(poisson(g.rng, 2.0))
		charge := 15 + g.rng.Float64()*85
		usage := math.Abs(g.rng.NormFloat64()*8 + 12)
		// Logistic churn model: more support/dropped calls raise the
		// churn odds, long tenure lowers them. Coefficients are strong
		// enough that a trained classifier clearly beats the majority
		// baseline, which the Labs scoring relies on.
		logit := -1.4 + 0.9*float64(support) + 0.5*float64(dropped) - 0.06*float64(tenure) + 0.02*(charge-50)
		p := 1 / (1 + math.Exp(-logit))
		churned := g.rng.Float64() < p
		row := storage.Row{
			int64(i + 1),
			fmt.Sprintf("subscriber-%05d", i+1),
			regions[g.rng.Intn(len(regions))],
			plans[g.rng.Intn(len(plans))],
			tenure,
			round2(charge),
			support,
			dropped,
			round2(usage),
			churned,
		}
		if err := tbl.Append(row); err != nil {
			return nil, fmt.Errorf("workload: telco customers: %w", err)
		}
	}
	return tbl, nil
}

// TelcoCDRs generates about perCustomer call records for each of n customers.
func (g *Generator) TelcoCDRs(customers, perCustomer int) (*storage.Table, error) {
	tbl, err := storage.NewTable("telco_cdrs", TelcoCDRSchema(),
		storage.WithPartitions(g.partitions), storage.WithPartitionKey("customer_id"))
	if err != nil {
		return nil, err
	}
	id := int64(1)
	for c := 1; c <= customers; c++ {
		calls := poisson(g.rng, float64(perCustomer))
		for k := 0; k < calls; k++ {
			start := baseTime.Add(time.Duration(g.rng.Intn(90*24)) * time.Hour)
			row := storage.Row{
				id,
				int64(c),
				fmt.Sprintf("+39%09d", g.rng.Intn(1_000_000_000)),
				storage.TimeValue(start),
				int64(g.rng.Intn(1800) + 5),
				g.rng.Float64() < 0.05,
				int64(g.rng.Intn(500)),
			}
			if err := tbl.Append(row); err != nil {
				return nil, fmt.Errorf("workload: telco cdrs: %w", err)
			}
			id++
		}
	}
	return tbl, nil
}

// ---------------------------------------------------------------------------
// Retail baskets
// ---------------------------------------------------------------------------

// RetailSchema describes a single basket line item.
func RetailSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Field{Name: "line_id", Type: storage.TypeInt},
		storage.Field{Name: "basket_id", Type: storage.TypeInt},
		storage.Field{Name: "customer_id", Type: storage.TypeInt},
		storage.Field{Name: "store", Type: storage.TypeString},
		storage.Field{Name: "product", Type: storage.TypeString},
		storage.Field{Name: "category", Type: storage.TypeString},
		storage.Field{Name: "quantity", Type: storage.TypeInt},
		storage.Field{Name: "unit_price", Type: storage.TypeFloat},
		storage.Field{Name: "sold_at", Type: storage.TypeTime},
	)
}

var retailCatalogue = []struct {
	product  string
	category string
	price    float64
}{
	{"milk", "dairy", 1.20}, {"cheese", "dairy", 4.50}, {"yogurt", "dairy", 0.90},
	{"bread", "bakery", 1.10}, {"croissant", "bakery", 1.60},
	{"apples", "produce", 2.30}, {"bananas", "produce", 1.70}, {"tomatoes", "produce", 2.90},
	{"pasta", "pantry", 1.40}, {"rice", "pantry", 2.10}, {"olive_oil", "pantry", 6.50},
	{"coffee", "beverages", 5.20}, {"tea", "beverages", 3.10}, {"wine", "beverages", 8.90},
	{"soap", "household", 2.40}, {"detergent", "household", 7.30},
	{"chocolate", "snacks", 2.80}, {"chips", "snacks", 1.90},
}

var stores = []string{"milan-01", "milan-02", "crema-01", "rome-01", "madrid-01"}

// RetailBaskets generates n baskets with affinity structure: buyers of pasta
// tend to also buy tomatoes and olive oil, coffee pairs with croissants, so
// frequent-itemset mining finds non-trivial rules.
func (g *Generator) RetailBaskets(n int) (*storage.Table, error) {
	tbl, err := storage.NewTable("retail_baskets", RetailSchema(),
		storage.WithPartitions(g.partitions), storage.WithPartitionKey("basket_id"))
	if err != nil {
		return nil, err
	}
	affinities := map[string][]string{
		"pasta":  {"tomatoes", "olive_oil"},
		"coffee": {"croissant", "chocolate"},
		"wine":   {"cheese", "bread"},
	}
	lineID := int64(1)
	for b := 1; b <= n; b++ {
		customer := int64(g.rng.Intn(n/3+1) + 1)
		store := stores[g.rng.Intn(len(stores))]
		soldAt := baseTime.Add(time.Duration(g.rng.Intn(60*24)) * time.Hour)
		items := g.basketItems(affinities)
		for _, it := range items {
			row := storage.Row{
				lineID,
				int64(b),
				customer,
				store,
				it.product,
				it.category,
				int64(g.rng.Intn(3) + 1),
				it.price,
				storage.TimeValue(soldAt),
			}
			if err := tbl.Append(row); err != nil {
				return nil, fmt.Errorf("workload: retail baskets: %w", err)
			}
			lineID++
		}
	}
	return tbl, nil
}

func (g *Generator) basketItems(affinities map[string][]string) []struct {
	product  string
	category string
	price    float64
} {
	count := g.rng.Intn(5) + 2
	chosen := map[string]bool{}
	var out []struct {
		product  string
		category string
		price    float64
	}
	add := func(name string) {
		if chosen[name] {
			return
		}
		for _, item := range retailCatalogue {
			if item.product == name {
				chosen[name] = true
				out = append(out, item)
				return
			}
		}
	}
	for len(out) < count {
		item := retailCatalogue[g.rng.Intn(len(retailCatalogue))]
		add(item.product)
		// Pull in affine products with high probability to create rules.
		if friends, ok := affinities[item.product]; ok {
			for _, f := range friends {
				if g.rng.Float64() < 0.7 {
					add(f)
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Smart-meter readings
// ---------------------------------------------------------------------------

// EnergySchema describes a smart-meter reading.
func EnergySchema() *storage.Schema {
	return storage.MustSchema(
		storage.Field{Name: "reading_id", Type: storage.TypeInt},
		storage.Field{Name: "meter_id", Type: storage.TypeInt},
		storage.Field{Name: "household", Type: storage.TypeString, Sensitivity: storage.Personal},
		storage.Field{Name: "read_at", Type: storage.TypeTime},
		storage.Field{Name: "kwh", Type: storage.TypeFloat},
		storage.Field{Name: "voltage", Type: storage.TypeFloat},
		storage.Field{Name: "anomaly", Type: storage.TypeBool},
	)
}

// SmartMeterReadings generates hourly readings for the given number of meters
// and days. Consumption follows a daily sinusoidal pattern plus noise; about
// 1% of readings are injected anomalies (spikes), labelled in the anomaly
// column so detection quality can be scored.
func (g *Generator) SmartMeterReadings(meters, days int) (*storage.Table, error) {
	tbl, err := storage.NewTable("meter_readings", EnergySchema(),
		storage.WithPartitions(g.partitions), storage.WithPartitionKey("meter_id"))
	if err != nil {
		return nil, err
	}
	id := int64(1)
	for m := 1; m <= meters; m++ {
		baseLoad := 0.2 + g.rng.Float64()*0.6
		for h := 0; h < days*24; h++ {
			ts := baseTime.Add(time.Duration(h) * time.Hour)
			hourOfDay := float64(h % 24)
			seasonal := 0.5 + 0.5*math.Sin((hourOfDay-6)/24*2*math.Pi)
			kwh := baseLoad + seasonal + g.rng.NormFloat64()*0.05
			anomaly := g.rng.Float64() < 0.01
			if anomaly {
				kwh += 3 + g.rng.Float64()*2
			}
			if kwh < 0 {
				kwh = 0
			}
			row := storage.Row{
				id,
				int64(m),
				fmt.Sprintf("household-%04d", m),
				storage.TimeValue(ts),
				round3(kwh),
				round2(228 + g.rng.NormFloat64()*3),
				anomaly,
			}
			if err := tbl.Append(row); err != nil {
				return nil, fmt.Errorf("workload: meter readings: %w", err)
			}
			id++
		}
	}
	return tbl, nil
}

// ---------------------------------------------------------------------------
// Web clickstream
// ---------------------------------------------------------------------------

// ClickstreamSchema describes a web log event.
func ClickstreamSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Field{Name: "event_id", Type: storage.TypeInt},
		storage.Field{Name: "user_id", Type: storage.TypeInt},
		storage.Field{Name: "ip", Type: storage.TypeString, Sensitivity: storage.Personal},
		storage.Field{Name: "url", Type: storage.TypeString},
		storage.Field{Name: "referrer", Type: storage.TypeString, Nullable: true},
		storage.Field{Name: "occurred_at", Type: storage.TypeTime},
		storage.Field{Name: "duration_ms", Type: storage.TypeInt},
		storage.Field{Name: "converted", Type: storage.TypeBool},
	)
}

var pages = []string{"/", "/catalog", "/product/1", "/product/2", "/product/3", "/cart", "/checkout", "/help", "/account"}

// Clickstream generates events for the given number of users, with an average
// of eventsPerUser page views grouped into sessions. Visits that reach
// /checkout mark the terminal event as converted.
func (g *Generator) Clickstream(users, eventsPerUser int) (*storage.Table, error) {
	tbl, err := storage.NewTable("clickstream", ClickstreamSchema(),
		storage.WithPartitions(g.partitions), storage.WithPartitionKey("user_id"))
	if err != nil {
		return nil, err
	}
	id := int64(1)
	for u := 1; u <= users; u++ {
		events := poisson(g.rng, float64(eventsPerUser))
		if events == 0 {
			events = 1
		}
		cursor := baseTime.Add(time.Duration(g.rng.Intn(30*24)) * time.Hour)
		ip := fmt.Sprintf("10.%d.%d.%d", g.rng.Intn(256), g.rng.Intn(256), g.rng.Intn(256))
		var prev string
		for e := 0; e < events; e++ {
			// Session gap of up to 6 hours with 15% probability.
			if g.rng.Float64() < 0.15 {
				cursor = cursor.Add(time.Duration(g.rng.Intn(6*3600)) * time.Second)
				prev = ""
			} else {
				cursor = cursor.Add(time.Duration(g.rng.Intn(240)+5) * time.Second)
			}
			url := pages[g.rng.Intn(len(pages))]
			var ref storage.Value
			if prev != "" {
				ref = prev
			}
			converted := url == "/checkout" && g.rng.Float64() < 0.6
			row := storage.Row{
				id,
				int64(u),
				ip,
				url,
				ref,
				storage.TimeValue(cursor),
				int64(g.rng.Intn(30000) + 200),
				converted,
			}
			if err := tbl.Append(row); err != nil {
				return nil, fmt.Errorf("workload: clickstream: %w", err)
			}
			prev = url
			id++
		}
	}
	return tbl, nil
}

// ---------------------------------------------------------------------------
// Payments / fraud
// ---------------------------------------------------------------------------

// PaymentsSchema describes a card transaction with a fraud label.
func PaymentsSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Field{Name: "tx_id", Type: storage.TypeInt},
		storage.Field{Name: "account_id", Type: storage.TypeInt},
		storage.Field{Name: "card_number", Type: storage.TypeString, Sensitivity: storage.Sensitive},
		storage.Field{Name: "merchant", Type: storage.TypeString},
		storage.Field{Name: "country", Type: storage.TypeString},
		storage.Field{Name: "amount", Type: storage.TypeFloat},
		storage.Field{Name: "occurred_at", Type: storage.TypeTime},
		storage.Field{Name: "online", Type: storage.TypeBool},
		storage.Field{Name: "fraud", Type: storage.TypeBool},
	)
}

var merchants = []string{"grocer", "electronics", "fuel", "travel", "fashion", "gaming", "pharmacy", "restaurant"}
var countries = []string{"IT", "ES", "FR", "DE", "GB", "US", "CN", "RU"}

// Payments generates n card transactions, about fraudRate of which are
// fraudulent. Fraudulent transactions skew towards high amounts, online
// channels and unusual countries, so both supervised and unsupervised
// detectors have signal.
func (g *Generator) Payments(n int, fraudRate float64) (*storage.Table, error) {
	if fraudRate < 0 || fraudRate > 1 {
		return nil, fmt.Errorf("workload: fraud rate %v out of [0,1]", fraudRate)
	}
	tbl, err := storage.NewTable("payments", PaymentsSchema(),
		storage.WithPartitions(g.partitions), storage.WithPartitionKey("account_id"))
	if err != nil {
		return nil, err
	}
	for i := 1; i <= n; i++ {
		fraud := g.rng.Float64() < fraudRate
		amount := math.Abs(g.rng.NormFloat64()*40 + 35)
		country := countries[g.rng.Intn(4)] // mostly EU
		online := g.rng.Float64() < 0.35
		if fraud {
			amount = math.Abs(g.rng.NormFloat64()*300 + 400)
			country = countries[4+g.rng.Intn(4)] // mostly non-EU
			online = g.rng.Float64() < 0.85
		}
		row := storage.Row{
			int64(i),
			int64(g.rng.Intn(n/5+1) + 1),
			fmt.Sprintf("4%015d", g.rng.Int63n(1_000_000_000_000_000)),
			merchants[g.rng.Intn(len(merchants))],
			country,
			round2(amount),
			storage.TimeValue(baseTime.Add(time.Duration(g.rng.Intn(30*24*3600)) * time.Second)),
			online,
			fraud,
		}
		if err := tbl.Append(row); err != nil {
			return nil, fmt.Errorf("workload: payments: %w", err)
		}
	}
	return tbl, nil
}

// ---------------------------------------------------------------------------
// Scenario bundles
// ---------------------------------------------------------------------------

// Scenario bundles the tables of one vertical together with its descriptive
// metadata, ready to be registered with a storage catalog.
type Scenario struct {
	Vertical    Vertical
	Description string
	Tables      []*storage.Table
	// LabelTable and LabelField identify the ground-truth column used by the
	// Labs scoring machinery (empty when the scenario is unsupervised).
	LabelTable string
	LabelField string
}

// Sizing controls how much data Generate produces; the zero value selects
// laptop-scale defaults suitable for tests.
type Sizing struct {
	Customers int // telco subscribers / retail baskets / payment count base
	Meters    int
	Days      int
	Users     int
}

// DefaultSizing returns the sizing used by Labs challenges and examples.
func DefaultSizing() Sizing {
	return Sizing{Customers: 2000, Meters: 20, Days: 14, Users: 300}
}

// smallSizing lower-bounds a sizing so degenerate values still generate data.
func (s Sizing) normalized() Sizing {
	d := DefaultSizing()
	if s.Customers <= 0 {
		s.Customers = d.Customers
	}
	if s.Meters <= 0 {
		s.Meters = d.Meters
	}
	if s.Days <= 0 {
		s.Days = d.Days
	}
	if s.Users <= 0 {
		s.Users = d.Users
	}
	return s
}

// Generate produces the full scenario for a vertical at the given sizing.
func (g *Generator) Generate(v Vertical, sz Sizing) (*Scenario, error) {
	sz = sz.normalized()
	switch v {
	case VerticalTelco:
		customers, err := g.TelcoCustomers(sz.Customers)
		if err != nil {
			return nil, err
		}
		cdrs, err := g.TelcoCDRs(sz.Customers/4, 8)
		if err != nil {
			return nil, err
		}
		return &Scenario{
			Vertical:    VerticalTelco,
			Description: "telecom churn prediction over subscriber profiles and call detail records",
			Tables:      []*storage.Table{customers, cdrs},
			LabelTable:  "telco_customers",
			LabelField:  "churned",
		}, nil
	case VerticalRetail:
		baskets, err := g.RetailBaskets(sz.Customers)
		if err != nil {
			return nil, err
		}
		return &Scenario{
			Vertical:    VerticalRetail,
			Description: "retail market-basket analysis and revenue reporting",
			Tables:      []*storage.Table{baskets},
		}, nil
	case VerticalEnergy:
		readings, err := g.SmartMeterReadings(sz.Meters, sz.Days)
		if err != nil {
			return nil, err
		}
		return &Scenario{
			Vertical:    VerticalEnergy,
			Description: "smart-meter consumption forecasting and anomaly detection",
			Tables:      []*storage.Table{readings},
			LabelTable:  "meter_readings",
			LabelField:  "anomaly",
		}, nil
	case VerticalWeb:
		clicks, err := g.Clickstream(sz.Users, 20)
		if err != nil {
			return nil, err
		}
		return &Scenario{
			Vertical:    VerticalWeb,
			Description: "clickstream sessionization and conversion funnel analysis",
			Tables:      []*storage.Table{clicks},
			LabelTable:  "clickstream",
			LabelField:  "converted",
		}, nil
	case VerticalFinance:
		payments, err := g.Payments(sz.Customers*2, 0.03)
		if err != nil {
			return nil, err
		}
		return &Scenario{
			Vertical:    VerticalFinance,
			Description: "payment fraud detection over card transactions",
			Tables:      []*storage.Table{payments},
			LabelTable:  "payments",
			LabelField:  "fraud",
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown vertical %q", v)
	}
}

// Register adds every table of the scenario to the catalog.
func (s *Scenario) Register(c *storage.Catalog) error {
	for _, t := range s.Tables {
		if err := c.Register(t); err != nil {
			return fmt.Errorf("workload: register scenario %s: %w", s.Vertical, err)
		}
	}
	return nil
}

// Table returns the scenario table with the given name.
func (s *Scenario) Table(name string) (*storage.Table, error) {
	for _, t := range s.Tables {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("workload: scenario %s has no table %q", s.Vertical, name)
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

// poisson draws from a Poisson distribution with the given mean using Knuth's
// algorithm; adequate for the small means used here.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		k++
		p *= rng.Float64()
		if p <= l {
			return k - 1
		}
		if k > 10000 {
			return k
		}
	}
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
