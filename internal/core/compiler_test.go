package core

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/deployment"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/workload"
)

// testEnv registers a small telco scenario and returns the compiler plus the
// standard churn campaign.
func testEnv(t *testing.T) (*Compiler, *model.Campaign) {
	t.Helper()
	data := storage.NewCatalog()
	sc, err := workload.NewGenerator(11).Generate(workload.VerticalTelco, workload.Sizing{Customers: 300, Meters: 1, Days: 1, Users: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Register(data); err != nil {
		t.Fatal(err)
	}
	compiler, err := NewCompiler(data)
	if err != nil {
		t.Fatal(err)
	}
	campaign := &model.Campaign{
		Name:     "churn",
		Vertical: "telco",
		Goal: model.Goal{
			Task:           model.TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "support_calls", "dropped_calls", "monthly_charge"},
		},
		Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []model.Objective{
			{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.7, Hard: true},
			{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 10},
		},
		Regime: model.RegimePseudonymize,
	}
	return compiler, campaign
}

func TestNewCompilerRequiresData(t *testing.T) {
	if _, err := NewCompiler(nil); err == nil {
		t.Error("nil data catalog must be rejected")
	}
}

func TestEnumerateAlternatives(t *testing.T) {
	compiler, campaign := testEnv(t)
	alternatives, timings, err := compiler.EnumerateAlternatives(campaign)
	if err != nil {
		t.Fatal(err)
	}
	if len(alternatives) < 10 {
		t.Fatalf("alternatives = %d, want a rich design space (>= 10)", len(alternatives))
	}
	if timings.Total() <= 0 {
		t.Error("phase timings must be recorded")
	}
	// Every alternative must be internally consistent.
	fingerprints := map[string]bool{}
	for _, alt := range alternatives {
		if err := alt.Composition.Validate(); err != nil {
			t.Errorf("alternative %d invalid: %v", alt.Index, err)
		}
		if alt.Plan == nil || !alt.Plan.Platform.Valid() {
			t.Errorf("alternative %d has no valid plan", alt.Index)
		}
		if _, ok := alt.Estimates.Get(model.IndicatorCost); !ok {
			t.Errorf("alternative %d missing cost estimate", alt.Index)
		}
		if fingerprints[alt.Fingerprint()] {
			t.Errorf("duplicate alternative %s", alt.Fingerprint())
		}
		fingerprints[alt.Fingerprint()] = true
	}
	// The design space must contain genuinely different analytics services
	// and both compliant and non-compliant options under pseudonymize regime.
	analytics := map[string]bool{}
	compliant, nonCompliant := 0, 0
	for _, alt := range alternatives {
		if step, ok := alt.Composition.AnalyticsStep(); ok {
			analytics[step.Service.ID] = true
		}
		if alt.Compliant() {
			compliant++
		} else {
			nonCompliant++
		}
	}
	if len(analytics) < 3 {
		t.Errorf("analytics diversity = %d services, want >= 3", len(analytics))
	}
	if compliant == 0 || nonCompliant == 0 {
		t.Errorf("want both compliant (%d) and non-compliant (%d) options under pseudonymize", compliant, nonCompliant)
	}
}

func TestCompileSelectsCompliantFeasibleBest(t *testing.T) {
	compiler, campaign := testEnv(t)
	result, err := compiler.Compile(campaign)
	if err != nil {
		t.Fatal(err)
	}
	chosen := result.Chosen
	if !chosen.Compliant() {
		t.Fatalf("chosen alternative is non-compliant: %+v", chosen.Compliance.Violations)
	}
	if !chosen.Composition.HasAnonymization() {
		t.Error("under pseudonymize regime the chosen pipeline must anonymize")
	}
	if !chosen.Evaluation.Feasible {
		t.Errorf("chosen alternative infeasible: %s", chosen.Evaluation.Summary())
	}
	// No other compliant, within-budget alternative may strictly dominate the
	// chosen one on the evaluation ordering.
	for _, alt := range result.CompliantAlternatives() {
		if alt.Evaluation.Feasible && alt.Evaluation.Score > chosen.Evaluation.Score+1e-9 {
			t.Errorf("alternative %s (score %.3f) beats chosen %s (score %.3f)",
				alt.Fingerprint(), alt.Evaluation.Score, chosen.Fingerprint(), chosen.Evaluation.Score)
		}
	}
	if result.SourceRows != 300 {
		t.Errorf("source rows = %d, want 300", result.SourceRows)
	}
}

func TestCompileRespectsBudget(t *testing.T) {
	compiler, campaign := testEnv(t)
	unrestricted, err := compiler.Compile(campaign)
	if err != nil {
		t.Fatal(err)
	}
	chosenCost, _ := unrestricted.Chosen.Estimates.Get(model.IndicatorCost)

	tight := campaign.Clone()
	tight.Preferences.MaxBudget = chosenCost * 0.5
	restricted, err := compiler.Compile(tight)
	if err != nil {
		// Acceptable only if genuinely no alternative fits the budget.
		if !errors.Is(err, ErrNoCompliantAlternative) {
			t.Fatal(err)
		}
		return
	}
	restrictedCost, _ := restricted.Chosen.Estimates.Get(model.IndicatorCost)
	if restrictedCost > tight.Preferences.MaxBudget+1e-9 {
		t.Errorf("chosen cost %.4f exceeds budget %.4f", restrictedCost, tight.Preferences.MaxBudget)
	}
}

func TestCompileUnknownSource(t *testing.T) {
	compiler, campaign := testEnv(t)
	broken := campaign.Clone()
	broken.Sources = []model.DataSource{{Table: "ghost"}}
	broken.Goal.TargetTable = "ghost"
	if _, err := compiler.Compile(broken); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("err = %v, want ErrUnknownSource", err)
	}
}

func TestCompileInvalidCampaign(t *testing.T) {
	compiler, campaign := testEnv(t)
	bad := campaign.Clone()
	bad.Name = ""
	if _, err := compiler.Compile(bad); !errors.Is(err, model.ErrInvalidCampaign) {
		t.Errorf("err = %v, want ErrInvalidCampaign", err)
	}
}

func TestCompileStreamingPreference(t *testing.T) {
	compiler, campaign := testEnv(t)
	// Anomaly detection over payments supports streaming end to end.
	data := storage.NewCatalog()
	sc, err := workload.NewGenerator(3).Generate(workload.VerticalFinance, workload.Sizing{Customers: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Register(data); err != nil {
		t.Fatal(err)
	}
	streamingCompiler, err := NewCompiler(data)
	if err != nil {
		t.Fatal(err)
	}
	fraud := &model.Campaign{
		Name:     "fraud",
		Vertical: "finance",
		Goal: model.Goal{
			Task:        model.TaskAnomaly,
			TargetTable: "payments",
			ValueColumn: "amount",
			LabelColumn: "fraud",
		},
		Sources:     []model.DataSource{{Table: "payments", ContainsPersonalData: true, Region: "eu"}},
		Regime:      model.RegimePseudonymize,
		Preferences: model.Preferences{Streaming: true},
	}
	result, err := streamingCompiler.Compile(fraud)
	if err != nil {
		t.Fatal(err)
	}
	if result.Chosen.Plan.Platform != deployment.PlatformStreaming {
		t.Errorf("platform = %s, want streaming when preferred and supported", result.Chosen.Plan.Platform)
	}
	_ = compiler
	_ = campaign
}

func TestSelectBestPrefersFeasibleThenScoreThenCost(t *testing.T) {
	compiler, campaign := testEnv(t)
	alternatives, _, err := compiler.EnumerateAlternatives(campaign)
	if err != nil {
		t.Fatal(err)
	}
	best, err := SelectBest(campaign, alternatives)
	if err != nil {
		t.Fatal(err)
	}
	// Build the expected winner by brute force over compliant alternatives.
	type ranked struct {
		score float64
		cost  float64
		idx   int
	}
	var compliant []ranked
	for _, a := range alternatives {
		if !a.Compliant() || !a.Evaluation.Feasible {
			continue
		}
		cost, _ := a.Estimates.Get(model.IndicatorCost)
		compliant = append(compliant, ranked{score: a.Evaluation.Score, cost: cost, idx: a.Index})
	}
	if len(compliant) == 0 {
		t.Skip("no feasible compliant alternatives in this configuration")
	}
	sort.Slice(compliant, func(i, j int) bool {
		if compliant[i].score != compliant[j].score {
			return compliant[i].score > compliant[j].score
		}
		if compliant[i].cost != compliant[j].cost {
			return compliant[i].cost < compliant[j].cost
		}
		return compliant[i].idx < compliant[j].idx
	})
	if best.Index != compliant[0].idx {
		t.Errorf("SelectBest picked %d, brute force picked %d", best.Index, compliant[0].idx)
	}
}

func TestSelectBestNoCompliant(t *testing.T) {
	_, campaign := testEnv(t)
	if _, err := SelectBest(campaign, nil); !errors.Is(err, ErrNoCompliantAlternative) {
		t.Errorf("err = %v, want ErrNoCompliantAlternative", err)
	}
}

func TestInterferenceMonotoneAcrossRegimes(t *testing.T) {
	compiler, campaign := testEnv(t)
	points, err := compiler.Interference(campaign)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(model.Regimes()) {
		t.Fatalf("points = %d, want %d", len(points), len(model.Regimes()))
	}
	for i := 1; i < len(points); i++ {
		if points[i].CompliantAlternatives > points[i-1].CompliantAlternatives {
			t.Errorf("regime %s admits more compliant alternatives (%d) than weaker regime %s (%d)",
				points[i].Regime, points[i].CompliantAlternatives, points[i-1].Regime, points[i-1].CompliantAlternatives)
		}
	}
	// Under no regulation every enumerated option that passes clearance is
	// compliant and several preparation options survive; under strict, the
	// surviving preparation options must shrink to the strict anonymizer.
	first, last := points[0], points[len(points)-1]
	if first.CompliantAlternatives == 0 {
		t.Error("regime none must admit compliant alternatives")
	}
	if last.PreparationOptions >= first.PreparationOptions {
		t.Errorf("strict regime must shrink preparation options: none=%d strict=%d",
			first.PreparationOptions, last.PreparationOptions)
	}
	if last.CompliantAlternatives == 0 {
		t.Error("strict regime must still admit at least one compliant alternative (the strict anonymizer path)")
	}
	// The original campaign must not have been mutated by the sweep.
	if campaign.Regime != model.RegimePseudonymize {
		t.Error("Interference must not mutate the campaign")
	}
}

func TestWhatIf(t *testing.T) {
	compiler, campaign := testEnv(t)
	variant := campaign.Clone()
	variant.Name = "churn-strict"
	variant.Regime = model.RegimeStrict
	report, err := compiler.WhatIf(campaign, variant)
	if err != nil {
		t.Fatal(err)
	}
	if report.Base == nil || report.Variant == nil {
		t.Fatal("report must carry both compile results")
	}
	// Moving to the strict regime must not decrease the privacy estimate.
	if report.Deltas[model.IndicatorPrivacy] < 0 {
		t.Errorf("privacy delta = %v, want >= 0 when tightening the regime", report.Deltas[model.IndicatorPrivacy])
	}
	// The service chains must differ (strict anonymizer swapped in).
	if len(report.ChangedServices) == 0 {
		t.Error("tightening the regime must change the chosen services")
	}
	joined := strings.Join(report.ChangedServices, " ")
	if !strings.Contains(joined, "mask-strict") {
		t.Errorf("changed services = %v, want the strict anonymizer to appear", report.ChangedServices)
	}
}

func TestWhatIfErrors(t *testing.T) {
	compiler, campaign := testEnv(t)
	bad := campaign.Clone()
	bad.Name = ""
	if _, err := compiler.WhatIf(bad, campaign); err == nil {
		t.Error("invalid base must fail")
	}
	if _, err := compiler.WhatIf(campaign, bad); err == nil {
		t.Error("invalid variant must fail")
	}
}

func TestPhaseTimingsTotal(t *testing.T) {
	p := PhaseTimings{Validate: 1, Match: 2, Compose: 3, Comply: 4, Bind: 5}
	if p.Total() != 15 {
		t.Errorf("total = %v", p.Total())
	}
}
