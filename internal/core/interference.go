package core

import (
	"fmt"

	"repro/internal/model"
)

// InterferencePoint reports, for one privacy regime, how many design options
// survive in each stage of the campaign's design space. Sweeping the regime
// from none to strict makes the paper's "interconnections and interferences
// of the different design stages" measurable (reproduced as Figure 1).
type InterferencePoint struct {
	// Regime applied to the campaign for this point.
	Regime model.PrivacyRegime
	// TotalAlternatives enumerated (independent of compliance).
	TotalAlternatives int
	// CompliantAlternatives that pass every blocking compliance rule.
	CompliantAlternatives int
	// PreparationOptions is the number of distinct privacy-preparation
	// choices (including "no anonymisation") present among compliant
	// alternatives.
	PreparationOptions int
	// AnalyticsOptions is the number of distinct analytics services present
	// among compliant alternatives.
	AnalyticsOptions int
	// DisplayOptions is the number of distinct display services present among
	// compliant alternatives.
	DisplayOptions int
	// PlatformOptions is the number of distinct deployment platforms present
	// among compliant alternatives.
	PlatformOptions int
}

// Interference sweeps the campaign across every privacy regime and reports
// the per-stage option counts that survive compliance checking. The campaign
// itself is not modified.
func (c *Compiler) Interference(campaign *model.Campaign) ([]InterferencePoint, error) {
	if err := campaign.Validate(); err != nil {
		return nil, err
	}
	var points []InterferencePoint
	for _, regime := range model.Regimes() {
		variant := campaign.Clone()
		variant.Regime = regime
		alternatives, _, err := c.EnumerateAlternatives(variant)
		if err != nil {
			return nil, fmt.Errorf("core: interference sweep at regime %s: %w", regime, err)
		}
		point := InterferencePoint{Regime: regime, TotalAlternatives: len(alternatives)}
		prep := map[string]bool{}
		analytics := map[string]bool{}
		display := map[string]bool{}
		platforms := map[string]bool{}
		for _, alt := range alternatives {
			if !alt.Compliant() {
				continue
			}
			point.CompliantAlternatives++
			prepChoice := "none"
			for _, step := range alt.Composition.StepsByArea(model.AreaPreparation) {
				if step.Service.Anonymizes {
					prepChoice = step.Service.ID
				}
			}
			prep[prepChoice] = true
			if step, ok := alt.Composition.AnalyticsStep(); ok {
				analytics[step.Service.ID] = true
			}
			for _, step := range alt.Composition.StepsByArea(model.AreaDisplay) {
				display[step.Service.ID] = true
			}
			platforms[string(alt.Plan.Platform)] = true
		}
		point.PreparationOptions = len(prep)
		point.AnalyticsOptions = len(analytics)
		point.DisplayOptions = len(display)
		point.PlatformOptions = len(platforms)
		points = append(points, point)
	}
	return points, nil
}

// WhatIfReport compares the compiled outcome of two campaign variants — the
// "trial and error" comparison a Labs trainee performs when changing one
// design decision and recompiling.
type WhatIfReport struct {
	// Base and Variant are the two compile results.
	Base, Variant *CompileResult
	// Deltas is variant-minus-base for every estimated indicator present in
	// both chosen alternatives.
	Deltas map[model.Indicator]float64
	// ChangedServices lists services present in exactly one of the two chosen
	// compositions.
	ChangedServices []string
}

// WhatIf compiles both campaigns and reports how the chosen alternative's
// estimated indicators move between them.
func (c *Compiler) WhatIf(base, variant *model.Campaign) (*WhatIfReport, error) {
	baseResult, err := c.Compile(base)
	if err != nil {
		return nil, fmt.Errorf("core: what-if base: %w", err)
	}
	variantResult, err := c.Compile(variant)
	if err != nil {
		return nil, fmt.Errorf("core: what-if variant: %w", err)
	}
	report := &WhatIfReport{
		Base:    baseResult,
		Variant: variantResult,
		Deltas:  map[model.Indicator]float64{},
	}
	for _, ind := range model.Indicators() {
		b, okB := baseResult.Chosen.Estimates.Get(ind)
		v, okV := variantResult.Chosen.Estimates.Get(ind)
		if okB && okV {
			report.Deltas[ind] = v - b
		}
	}
	baseServices := map[string]bool{}
	for _, id := range baseResult.Chosen.Composition.ServiceIDs() {
		baseServices[id] = true
	}
	variantServices := map[string]bool{}
	for _, id := range variantResult.Chosen.Composition.ServiceIDs() {
		variantServices[id] = true
	}
	for id := range baseServices {
		if !variantServices[id] {
			report.ChangedServices = append(report.ChangedServices, "-"+id)
		}
	}
	for id := range variantServices {
		if !baseServices[id] {
			report.ChangedServices = append(report.ChangedServices, "+"+id)
		}
	}
	return report, nil
}
