// Package core implements the primary contribution of the reproduced paper:
// the model-driven BDAaaS compiler that turns a declarative Big Data campaign
// (goals, indicators, objectives, privacy regime, preferences) into a
// ready-to-be-executed pipeline — a procedural service composition bound to a
// deployment plan — and that enumerates and compares the alternative designs a
// TOREADOR Labs trainee is asked to explore.
//
// Compilation proceeds through the phases the TOREADOR methodology
// prescribes:
//
//  1. validate the declarative model and resolve data sources;
//  2. match catalog services able to satisfy the goal in each design area;
//  3. compose candidate procedural models (service DAGs);
//  4. check each candidate against the compliance rules;
//  5. bind candidates to deployment platforms and estimate cost/latency.
//
// The same machinery exposes EnumerateAlternatives (the full design space,
// used by the planner and the Labs) and Interference (how a choice in one
// design stage — typically the privacy regime — restricts the options left in
// the other stages), which reproduces the paper's central training claim.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/compliance"
	"repro/internal/deployment"
	"repro/internal/model"
	"repro/internal/procedural"
	"repro/internal/sla"
	"repro/internal/storage"
	"repro/internal/store"
)

// Errors returned by the compiler.
var (
	ErrUnknownSource          = errors.New("core: campaign references an unregistered data source")
	ErrNoCandidateService     = errors.New("core: no catalog service implements the campaign goal")
	ErrNoCompliantAlternative = errors.New("core: no compliant alternative satisfies the campaign")
)

// Compiler is the model-driven transformation engine.
type Compiler struct {
	catalog    *catalog.Registry
	compliance *compliance.Engine
	binder     *deployment.Binder
	data       *storage.Catalog
	store      *store.Store
}

// Option configures compiler construction.
type Option func(*Compiler)

// WithCatalog overrides the service catalog (default: catalog.DefaultRegistry).
func WithCatalog(r *catalog.Registry) Option {
	return func(c *Compiler) { c.catalog = r }
}

// WithComplianceEngine overrides the compliance engine (default rules).
func WithComplianceEngine(e *compliance.Engine) Option {
	return func(c *Compiler) { c.compliance = e }
}

// WithBinder overrides the deployment binder.
func WithBinder(b *deployment.Binder) Option {
	return func(c *Compiler) { c.binder = b }
}

// WithDurableStore lets source resolution fall back to tables persisted in
// the durable segment store when a campaign references a table that is not in
// the in-memory catalog — typically a prior campaign's saved result.
func WithDurableStore(st *store.Store) Option {
	return func(c *Compiler) { c.store = st }
}

// NewCompiler returns a compiler that resolves data sources against the given
// storage catalog.
func NewCompiler(data *storage.Catalog, opts ...Option) (*Compiler, error) {
	if data == nil {
		return nil, fmt.Errorf("core: compiler requires a data catalog")
	}
	c := &Compiler{
		catalog:    catalog.DefaultRegistry(),
		compliance: compliance.NewEngine(),
		binder:     deployment.NewBinder(),
		data:       data,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Catalog returns the compiler's service catalog.
func (c *Compiler) Catalog() *catalog.Registry { return c.catalog }

// Alternative is one fully elaborated design option: a service composition,
// its deployment plan, its compliance report and its estimated indicators.
type Alternative struct {
	// Index is the position of the alternative in enumeration order.
	Index int
	// Composition is the procedural model.
	Composition *procedural.Composition
	// Plan is the bound deployment.
	Plan *deployment.Plan
	// Compliance is the rule-engine report for this composition/deployment.
	Compliance compliance.Report
	// Estimates are the statically estimated indicator values (measured
	// values come from actually running the pipeline).
	Estimates sla.Measurement
	// Evaluation scores the estimates against the campaign objectives.
	Evaluation sla.Evaluation
}

// Compliant reports whether the alternative passed the compliance check.
func (a Alternative) Compliant() bool { return a.Compliance.Compliant() }

// Fingerprint identifies the alternative by its service chain and platform.
func (a Alternative) Fingerprint() string {
	return fmt.Sprintf("%s @ %s", a.Composition.Fingerprint(), a.Plan.Platform)
}

// PhaseTimings records the wall-clock spent in each compilation phase
// (reproduced as Table 4).
type PhaseTimings struct {
	Validate time.Duration
	Match    time.Duration
	Compose  time.Duration
	Comply   time.Duration
	Bind     time.Duration
}

// Total returns the end-to-end compilation time.
func (p PhaseTimings) Total() time.Duration {
	return p.Validate + p.Match + p.Compose + p.Comply + p.Bind
}

// CompileResult is the output of Compile.
type CompileResult struct {
	// Campaign is the validated declarative model.
	Campaign *model.Campaign
	// Chosen is the selected best alternative.
	Chosen Alternative
	// Alternatives is the full enumerated design space, in enumeration order.
	Alternatives []Alternative
	// SourceRows is the resolved size of the campaign's target table.
	SourceRows int
	// Timings records per-phase compilation cost.
	Timings PhaseTimings
}

// CompliantAlternatives returns only the compliant alternatives.
func (r *CompileResult) CompliantAlternatives() []Alternative {
	var out []Alternative
	for _, a := range r.Alternatives {
		if a.Compliant() {
			out = append(out, a)
		}
	}
	return out
}

// sourceInfo is the resolved information about the campaign's data.
type sourceInfo struct {
	rows        int
	sensitivity storage.Sensitivity
}

// resolveSources validates that every declared source exists and returns the
// row count of the target table and the maximum sensitivity across sources.
func (c *Compiler) resolveSources(campaign *model.Campaign) (sourceInfo, error) {
	info := sourceInfo{sensitivity: storage.Public}
	for _, src := range campaign.Sources {
		schema, rows, err := c.resolveSource(src.Table)
		if err != nil {
			return info, err
		}
		if s := schema.MaxSensitivity(); s > info.sensitivity {
			info.sensitivity = s
		}
		if src.ContainsPersonalData && info.sensitivity < storage.Personal {
			info.sensitivity = storage.Personal
		}
		if src.Table == campaign.Goal.TargetTable {
			info.rows = rows
		}
	}
	return info, nil
}

// resolveSource finds a source table's schema and row count: the in-memory
// catalog first, then (when configured) the durable store, so a campaign can
// declare a prior campaign's persisted result as its source.
func (c *Compiler) resolveSource(name string) (*storage.Schema, int, error) {
	if tbl, err := c.data.Lookup(name); err == nil {
		return tbl.Schema(), tbl.NumRows(), nil
	}
	if c.store != nil {
		if schema, err := c.store.Schema(name); err == nil {
			ti, err := c.store.Info(name)
			if err != nil {
				return nil, 0, fmt.Errorf("%w: %q", ErrUnknownSource, name)
			}
			return schema, ti.Rows, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: %q", ErrUnknownSource, name)
}

// matchResult is the per-area candidate sets found by the matching phase.
type matchResult struct {
	analytics   []catalog.Descriptor
	privacyPrep []catalog.Descriptor // optional anonymisation services (plus a "none" slot)
	basePrep    []catalog.Descriptor // always-applied preparation (cleaning)
	normalize   []catalog.Descriptor // optional normalisation for feature-based tasks
	ingestion   map[deployment.Platform]catalog.Descriptor
	processing  map[deployment.Platform]catalog.Descriptor
	display     []catalog.Descriptor
}

// match finds the candidate services for the campaign in each design area.
func (c *Compiler) match(campaign *model.Campaign) (matchResult, error) {
	var m matchResult
	m.analytics = c.catalog.CandidatesForTask(campaign.Goal.Task)
	if len(m.analytics) == 0 {
		return m, fmt.Errorf("%w: task %q", ErrNoCandidateService, campaign.Goal.Task)
	}
	m.basePrep = c.catalog.ByCapability("clean_missing")
	m.normalize = c.catalog.ByCapability("normalize_features")
	m.privacyPrep = append(c.catalog.ByCapability("pseudonymize"), c.catalog.ByCapability("anonymize_strict")...)
	m.ingestion = map[deployment.Platform]catalog.Descriptor{}
	for _, d := range c.catalog.ByCapability("ingest_batch") {
		m.ingestion[deployment.PlatformBatch] = d
		m.ingestion[deployment.PlatformSingleNode] = d
	}
	for _, d := range c.catalog.ByCapability("ingest_stream") {
		m.ingestion[deployment.PlatformStreaming] = d
	}
	m.processing = map[deployment.Platform]catalog.Descriptor{}
	for _, d := range c.catalog.ByCapability("process_batch") {
		m.processing[deployment.PlatformBatch] = d
		m.processing[deployment.PlatformSingleNode] = d
	}
	for _, d := range c.catalog.ByCapability("process_stream") {
		m.processing[deployment.PlatformStreaming] = d
	}
	m.display = c.catalog.ByArea(model.AreaDisplay)
	if len(m.basePrep) == 0 || len(m.ingestion) == 0 || len(m.processing) == 0 || len(m.display) == 0 {
		return m, fmt.Errorf("%w: the catalog is missing mandatory areas", ErrNoCandidateService)
	}
	return m, nil
}

// featureBasedTask reports whether the task consumes numeric feature vectors
// (and therefore benefits from normalisation).
func featureBasedTask(t model.AnalyticsTask) bool {
	switch t {
	case model.TaskClassification, model.TaskClustering:
		return true
	default:
		return false
	}
}

// compose builds every candidate composition (before compliance filtering).
func (c *Compiler) compose(campaign *model.Campaign, m matchResult) []*procedural.Composition {
	// Privacy preparation options: none + every anonymiser in the catalog.
	privacyOptions := make([]*catalog.Descriptor, 0, len(m.privacyPrep)+1)
	privacyOptions = append(privacyOptions, nil)
	for i := range m.privacyPrep {
		privacyOptions = append(privacyOptions, &m.privacyPrep[i])
	}
	normalizeOptions := []bool{false}
	if featureBasedTask(campaign.Goal.Task) && len(m.normalize) > 0 {
		normalizeOptions = append(normalizeOptions, true)
	}
	platforms := []deployment.Platform{deployment.PlatformBatch, deployment.PlatformStreaming}

	var out []*procedural.Composition
	for _, privacy := range privacyOptions {
		for _, normalize := range normalizeOptions {
			for _, analytics := range m.analytics {
				for _, platform := range platforms {
					ingest, okIngest := m.ingestion[platform]
					process, okProcess := m.processing[platform]
					if !okIngest || !okProcess {
						continue
					}
					for _, display := range m.display {
						comp := c.buildComposition(campaign, ingest, m.basePrep[0], privacy, normalize, m.normalize, analytics, process, display)
						if comp == nil {
							continue
						}
						// Only keep compositions whose every step supports the
						// intended processing style.
						if platform == deployment.PlatformStreaming && !comp.SupportsStreaming() {
							continue
						}
						if platform != deployment.PlatformStreaming && !comp.SupportsBatch() {
							continue
						}
						out = append(out, comp)
					}
				}
			}
		}
	}
	return dedupeCompositions(out)
}

func dedupeCompositions(in []*procedural.Composition) []*procedural.Composition {
	seen := map[string]bool{}
	var out []*procedural.Composition
	for _, comp := range in {
		fp := comp.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, comp)
	}
	return out
}

// buildComposition assembles one linear composition.
func (c *Compiler) buildComposition(campaign *model.Campaign,
	ingest, basePrep catalog.Descriptor, privacy *catalog.Descriptor,
	normalize bool, normalizeServices []catalog.Descriptor,
	analytics, process, display catalog.Descriptor) *procedural.Composition {

	comp := &procedural.Composition{Campaign: campaign.Name}
	prev := ""
	add := func(id string, d catalog.Descriptor, params map[string]string) {
		step := procedural.Step{ID: id, Service: d, Params: params}
		if prev != "" {
			step.DependsOn = []string{prev}
		}
		comp.Steps = append(comp.Steps, step)
		prev = id
	}
	add("ingest", ingest, map[string]string{"table": campaign.Goal.TargetTable})
	add("clean", basePrep, nil)
	if privacy != nil {
		add("privacy", *privacy, nil)
	}
	if normalize && len(normalizeServices) > 0 {
		add("normalize", normalizeServices[0], nil)
	}
	add("analyze", analytics, analyticsParams(campaign))
	add("process", process, nil)
	add("display", display, nil)
	if err := comp.Validate(); err != nil {
		return nil
	}
	return comp
}

// analyticsParams maps the campaign goal onto the analytics step parameters
// the runner consumes.
func analyticsParams(campaign *model.Campaign) map[string]string {
	p := map[string]string{
		"table": campaign.Goal.TargetTable,
	}
	if campaign.Goal.LabelColumn != "" {
		p["label"] = campaign.Goal.LabelColumn
	}
	if len(campaign.Goal.FeatureColumns) > 0 {
		p["features"] = joinColumns(campaign.Goal.FeatureColumns)
	}
	if campaign.Goal.ValueColumn != "" {
		p["value"] = campaign.Goal.ValueColumn
	}
	if campaign.Goal.TimeColumn != "" {
		p["time"] = campaign.Goal.TimeColumn
	}
	if campaign.Goal.ItemColumn != "" {
		p["item"] = campaign.Goal.ItemColumn
	}
	if campaign.Goal.TransactionColumn != "" {
		p["transaction"] = campaign.Goal.TransactionColumn
	}
	if len(campaign.Goal.GroupColumns) > 0 {
		p["group"] = joinColumns(campaign.Goal.GroupColumns)
	}
	return p
}

func joinColumns(cols []string) string {
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

// elaborate turns a composition into a full alternative: compliance check,
// deployment binding, indicator estimation and objective evaluation.
func (c *Compiler) elaborate(campaign *model.Campaign, comp *procedural.Composition,
	info sourceInfo, index int) (Alternative, bool) {

	platform := deployment.PlatformBatch
	if comp.SupportsStreaming() && !comp.SupportsBatch() {
		platform = deployment.PlatformStreaming
	} else if campaign.Preferences.Streaming && comp.SupportsStreaming() {
		platform = deployment.PlatformStreaming
	}
	plan, err := c.binder.Bind(comp, platform, info.rows, campaign.Preferences)
	if err != nil {
		return Alternative{}, false
	}
	report, err := c.compliance.Evaluate(compliance.Input{
		Campaign:         campaign,
		Composition:      comp,
		DataSensitivity:  info.sensitivity,
		DeploymentRegion: plan.Region,
	})
	if err != nil {
		return Alternative{}, false
	}
	estimates := estimateIndicators(comp, plan, report, info.rows)
	alt := Alternative{
		Index:       index,
		Composition: comp,
		Plan:        plan,
		Compliance:  report,
		Estimates:   estimates,
		Evaluation:  sla.Evaluate(campaign.Objectives, estimates),
	}
	return alt, true
}

// estimateIndicators derives the static indicator estimates of an alternative.
func estimateIndicators(comp *procedural.Composition, plan *deployment.Plan,
	report compliance.Report, rows int) sla.Measurement {

	m := sla.Measurement{
		model.IndicatorAccuracy:  comp.EstimateQuality(),
		model.IndicatorCost:      plan.EstimatedCost,
		model.IndicatorLatency:   plan.EstimatedLatencyMillis,
		model.IndicatorPrivacy:   report.PrivacyScore,
		model.IndicatorFreshness: plan.EstimatedFreshnessSeconds,
	}
	if plan.EstimatedLatencyMillis > 0 {
		m[model.IndicatorThroughput] = float64(rows) / (plan.EstimatedLatencyMillis / 1000)
	}
	return m
}

// EnumerateAlternatives compiles the campaign into every distinct design
// alternative, without choosing among them. The timings output parameter is
// optional.
func (c *Compiler) EnumerateAlternatives(campaign *model.Campaign) ([]Alternative, PhaseTimings, error) {
	var timings PhaseTimings

	start := time.Now()
	if err := campaign.Validate(); err != nil {
		return nil, timings, err
	}
	info, err := c.resolveSources(campaign)
	if err != nil {
		return nil, timings, err
	}
	timings.Validate = time.Since(start)

	start = time.Now()
	matched, err := c.match(campaign)
	if err != nil {
		return nil, timings, err
	}
	timings.Match = time.Since(start)

	start = time.Now()
	compositions := c.compose(campaign, matched)
	timings.Compose = time.Since(start)

	start = time.Now()
	var alternatives []Alternative
	for _, comp := range compositions {
		alt, ok := c.elaborate(campaign, comp, info, len(alternatives))
		if !ok {
			continue
		}
		alternatives = append(alternatives, alt)
	}
	// Split comply/bind timing evenly: elaborate interleaves them; the split
	// is only informative for Table 4.
	elapsed := time.Since(start)
	timings.Comply = elapsed / 2
	timings.Bind = elapsed - timings.Comply

	if len(alternatives) == 0 {
		return nil, timings, fmt.Errorf("%w: %q", ErrNoCandidateService, campaign.Name)
	}
	return alternatives, timings, nil
}

// Compile enumerates the design space and selects the best compliant
// alternative: feasible and highest estimated objective score, with ties
// broken by lower estimated cost and then enumeration order.
func (c *Compiler) Compile(campaign *model.Campaign) (*CompileResult, error) {
	alternatives, timings, err := c.EnumerateAlternatives(campaign)
	if err != nil {
		return nil, err
	}
	info, err := c.resolveSources(campaign)
	if err != nil {
		return nil, err
	}
	chosen, err := SelectBest(campaign, alternatives)
	if err != nil {
		return nil, err
	}
	return &CompileResult{
		Campaign:     campaign,
		Chosen:       chosen,
		Alternatives: alternatives,
		SourceRows:   info.rows,
		Timings:      timings,
	}, nil
}

// SelectBest picks the best alternative for the campaign: only compliant
// alternatives within the declared budget are considered; among them,
// alternatives matching the user's processing-style preference come first,
// then the best objective evaluation wins (sla.Compare), with ties broken by
// lower estimated cost and finally by enumeration order.
func SelectBest(campaign *model.Campaign, alternatives []Alternative) (Alternative, error) {
	candidates := make([]Alternative, 0, len(alternatives))
	for _, a := range alternatives {
		if !a.Compliant() {
			continue
		}
		if campaign.Preferences.MaxBudget > 0 {
			if cost, ok := a.Estimates.Get(model.IndicatorCost); ok && cost > campaign.Preferences.MaxBudget {
				continue
			}
		}
		candidates = append(candidates, a)
	}
	if len(candidates) == 0 {
		return Alternative{}, fmt.Errorf("%w: %q (%d alternatives examined)", ErrNoCompliantAlternative, campaign.Name, len(alternatives))
	}
	prefersStreaming := campaign.Preferences.Streaming
	matchesPreference := func(a Alternative) bool {
		if !prefersStreaming {
			return true
		}
		return a.Plan.Platform == deployment.PlatformStreaming
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		mi, mj := matchesPreference(candidates[i]), matchesPreference(candidates[j])
		if mi != mj {
			return mi
		}
		cmp := sla.Compare(candidates[i].Evaluation, candidates[j].Evaluation)
		if cmp != 0 {
			return cmp > 0
		}
		ci, _ := candidates[i].Estimates.Get(model.IndicatorCost)
		cj, _ := candidates[j].Estimates.Get(model.IndicatorCost)
		if ci != cj {
			return ci < cj
		}
		return candidates[i].Index < candidates[j].Index
	})
	return candidates[0], nil
}
