package toreador

import (
	"context"
	"testing"
)

// churnCampaign is the canonical campaign used across the facade tests.
func churnCampaign() *Campaign {
	return &Campaign{
		Name:     "churn",
		Vertical: string(VerticalTelco),
		Goal: Goal{
			Task:           TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "support_calls", "dropped_calls", "monthly_charge"},
		},
		Sources: []DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []Objective{
			{Indicator: IndicatorAccuracy, Comparison: AtLeast, Target: 0.65, Hard: true},
			{Indicator: IndicatorCost, Comparison: AtMost, Target: 5},
		},
		Regime: RegimePseudonymize,
	}
}

func newTelcoPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RegisterScenario(VerticalTelco, Sizing{Customers: 300, Meters: 1, Days: 1, Users: 1}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformEndToEnd(t *testing.T) {
	p := newTelcoPlatform(t, Config{Seed: 5})
	if len(p.Tables()) == 0 {
		t.Fatal("scenario registration must add tables")
	}
	campaign := churnCampaign()
	result, report, err := p.Execute(context.Background(), campaign)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Chosen.Compliant() {
		t.Error("chosen alternative must be compliant")
	}
	if acc, _ := report.Measured.Get(IndicatorAccuracy); acc < 0.6 {
		t.Errorf("measured accuracy = %v, want >= 0.6", acc)
	}
	if !report.Evaluation.Feasible {
		t.Errorf("hard objectives not met:\n%s", report.Evaluation.Summary())
	}
}

func TestPlatformAlternativesAndPlanning(t *testing.T) {
	p := newTelcoPlatform(t, Config{Seed: 5})
	campaign := churnCampaign()
	alternatives, err := p.Alternatives(campaign)
	if err != nil || len(alternatives) < 10 {
		t.Fatalf("alternatives = %d, %v", len(alternatives), err)
	}
	decision, err := p.Plan(campaign, StrategyExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	if decision.Explored != len(alternatives) {
		t.Errorf("exhaustive planning explored %d of %d", decision.Explored, len(alternatives))
	}
	points, err := p.Interference(campaign)
	if err != nil || len(points) != 4 {
		t.Fatalf("interference points = %d, %v", len(points), err)
	}
	variant := campaign.Clone()
	variant.Name = "churn-strict"
	variant.Regime = RegimeStrict
	diff, err := p.WhatIf(campaign, variant)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.ChangedServices) == 0 {
		t.Error("regime change must alter the chosen services")
	}
}

func TestPlatformPersistence(t *testing.T) {
	dir := t.TempDir()
	p := newTelcoPlatform(t, Config{Seed: 5, RepositoryDir: dir})
	campaign := churnCampaign()
	if _, _, err := p.Execute(context.Background(), campaign); err != nil {
		t.Fatal(err)
	}
	runs, err := p.Runs("churn")
	if err != nil || len(runs) != 1 {
		t.Fatalf("persisted runs = %d, %v", len(runs), err)
	}
	if runs[0].Score <= 0 || !runs[0].Compliant {
		t.Errorf("persisted run = %+v", runs[0])
	}
	// A platform without a repository refuses to list runs.
	noRepo := newTelcoPlatform(t, Config{Seed: 5})
	if _, err := noRepo.Runs("churn"); err == nil {
		t.Error("Runs without repository must fail")
	}
}

func TestPlatformDurableStore(t *testing.T) {
	dir := t.TempDir()
	p := newTelcoPlatform(t, Config{Seed: 5, StoreDir: dir})
	if p.Store() == nil {
		t.Fatal("StoreDir must attach a durable store")
	}
	if _, _, err := p.Execute(context.Background(), churnCampaign()); err != nil {
		t.Fatal(err)
	}
	if !p.Store().Has("results/churn") {
		t.Fatalf("run did not save its result table; have %v", p.Store().Tables())
	}
	rows, err := p.Store().Rows("results/churn")
	if err != nil || len(rows) == 0 {
		t.Fatalf("stored rows = %d, %v", len(rows), err)
	}

	// A second platform on the same directory recovers the saved table and can
	// compile+run a campaign sourced from it — without re-registering the
	// original scenario data.
	p2, err := New(Config{Seed: 5, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Store().Has("results/churn") {
		t.Fatal("saved table lost across platform restart")
	}
	followUp := churnCampaign()
	followUp.Name = "churn-from-store"
	followUp.Goal.TargetTable = "results/churn"
	followUp.Sources = []DataSource{{Table: "results/churn", ContainsPersonalData: true, Region: "eu"}}
	if _, report, err := p2.Execute(context.Background(), followUp); err != nil {
		t.Fatal(err)
	} else if report.RowsProcessed != len(rows) {
		t.Fatalf("follow-up processed %d rows, stored table has %d", report.RowsProcessed, len(rows))
	}
}

func TestOpenLabFacade(t *testing.T) {
	lab, err := OpenLab(3, Sizing{Customers: 200, Meters: 2, Days: 2, Users: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Challenges()) != 5 || len(BuiltinChallenges()) != 5 {
		t.Fatal("labs must expose the five built-in challenges")
	}
	session := NewLabSession(lab)
	attempt, err := session.Submit(context.Background(), "alice", "retail-baskets", 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := CompareAttempts([]*Attempt{attempt})
	if len(rows) != 1 || rows[0].Trainee != "alice" {
		t.Errorf("comparison rows = %+v", rows)
	}
	board := session.Leaderboard()
	if len(board) != 1 || board[0].Trainee != "alice" {
		t.Errorf("leaderboard = %+v", board)
	}
}

func TestRegisterTableDirectly(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Register a raw table via the storage-facing API and target it.
	sc, err := p.RegisterScenario(VerticalRetail, Sizing{Customers: 100})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sc.Table("retail_baskets")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterTable(tbl); err == nil {
		t.Error("re-registering the same table name must fail")
	}
}

func TestPlatformServiceFacade(t *testing.T) {
	p := newTelcoPlatform(t, Config{Seed: 5})
	svc, err := p.NewService(ServiceConfig{QueueDepth: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	campaign := churnCampaign()
	result, err := p.Compile(campaign)
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := svc.Submit("acme", campaign, result.Chosen)
	if err != nil {
		t.Fatal(err)
	}
	if err := ticket.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ticket.Status() != StatusCompleted {
		report, rerr := ticket.Result()
		t.Fatalf("status = %s (report=%v err=%v)", ticket.Status(), report, rerr)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().CounterValue("service.completed"); got != 1 {
		t.Errorf("service.completed = %d, want 1", got)
	}
}
