package toreador

// ablation_bench_test.go contains ablation benchmarks for the design choices
// called out in DESIGN.md: what the compliance engine buys (and costs), how
// anonymisation strength affects measured analytics quality, and how the
// deployment parallelism choice affects measured pipeline latency.

import (
	"context"
	"testing"

	"repro/internal/compliance"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ablationEnv builds a telco data catalog and churn campaign for the ablation
// benchmarks.
func ablationEnv(b *testing.B) (*storage.Catalog, *model.Campaign) {
	b.Helper()
	data := storage.NewCatalog()
	sc, err := workload.NewGenerator(1).Generate(workload.VerticalTelco, workload.Sizing{Customers: 800, Meters: 1, Days: 1, Users: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := sc.Register(data); err != nil {
		b.Fatal(err)
	}
	campaign := &model.Campaign{
		Name:     "ablation-churn",
		Vertical: "telco",
		Goal: model.Goal{
			Task:           model.TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "monthly_charge", "support_calls", "dropped_calls"},
		},
		Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []model.Objective{
			{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.75, Hard: true},
		},
		Regime: model.RegimePseudonymize,
	}
	return data, campaign
}

// BenchmarkAblationComplianceEngine compares compilation with the full rule
// set against compilation with the compliance engine emptied out. It shows
// what the regulatory checking costs (compile time) and what it buys (the
// share of the design space that would silently violate the regime).
func BenchmarkAblationComplianceEngine(b *testing.B) {
	data, campaign := ablationEnv(b)

	b.Run("with-rules", func(b *testing.B) {
		compiler, err := core.NewCompiler(data)
		if err != nil {
			b.Fatal(err)
		}
		var compliant, total int
		for i := 0; i < b.N; i++ {
			alternatives, _, err := compiler.EnumerateAlternatives(campaign)
			if err != nil {
				b.Fatal(err)
			}
			total = len(alternatives)
			compliant = 0
			for _, a := range alternatives {
				if a.Compliant() {
					compliant++
				}
			}
		}
		b.ReportMetric(float64(total), "alternatives")
		b.ReportMetric(float64(compliant), "compliant")
	})

	b.Run("without-rules", func(b *testing.B) {
		compiler, err := core.NewCompiler(data, core.WithComplianceEngine(compliance.NewEngineWithRules()))
		if err != nil {
			b.Fatal(err)
		}
		var compliant, total int
		for i := 0; i < b.N; i++ {
			alternatives, _, err := compiler.EnumerateAlternatives(campaign)
			if err != nil {
				b.Fatal(err)
			}
			total = len(alternatives)
			compliant = 0
			for _, a := range alternatives {
				if a.Compliant() {
					compliant++
				}
			}
		}
		// Without rules every alternative looks compliant — including the
		// ones exporting raw personal data.
		b.ReportMetric(float64(total), "alternatives")
		b.ReportMetric(float64(compliant), "compliant")
	})
}

// BenchmarkAblationAnonymizationStrength executes the same churn pipeline
// with pseudonymisation and with strict masking and reports the measured
// accuracy of each: privacy protection on identifier columns does not degrade
// model quality in these scenarios, which is exactly why the compiler can
// insert it automatically.
func BenchmarkAblationAnonymizationStrength(b *testing.B) {
	data, campaign := ablationEnv(b)
	compiler, err := core.NewCompiler(data)
	if err != nil {
		b.Fatal(err)
	}
	run, err := runner.New(data, runner.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	alternatives, _, err := compiler.EnumerateAlternatives(campaign)
	if err != nil {
		b.Fatal(err)
	}
	pick := func(privacyService string) *core.Alternative {
		for i := range alternatives {
			alt := alternatives[i]
			step, ok := alt.Composition.AnalyticsStep()
			if !ok || step.Service.ID != "classify-logreg" {
				continue
			}
			hasService := false
			for _, s := range alt.Composition.Steps {
				if s.Service.ID == privacyService {
					hasService = true
				}
			}
			if hasService && alt.Plan.Platform == "parallel-batch" {
				return &alternatives[i]
			}
		}
		return nil
	}
	ctx := context.Background()
	for _, tc := range []struct {
		name    string
		service string
	}{
		{"pseudonymize", "pseudonymize-pii"},
		{"strict-mask", "mask-strict"},
	} {
		alt := pick(tc.service)
		if alt == nil {
			b.Fatalf("no alternative uses %s", tc.service)
		}
		b.Run(tc.name, func(b *testing.B) {
			var accuracy float64
			for i := 0; i < b.N; i++ {
				report, err := run.Run(ctx, campaign, *alt)
				if err != nil {
					b.Fatal(err)
				}
				accuracy, _ = report.Measured.Get(model.IndicatorAccuracy)
			}
			b.ReportMetric(accuracy, "accuracy")
		})
	}
}

// BenchmarkAblationParallelism executes the chosen churn pipeline at
// different requested degrees of parallelism and reports the measured
// end-to-end latency, exposing the deployment-stage knob the binder tunes.
func BenchmarkAblationParallelism(b *testing.B) {
	data, base := ablationEnv(b)
	run, err := runner.New(data, runner.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, parallelism := range []int{1, 2, 4} {
		campaign := base.Clone()
		campaign.Preferences.Parallelism = parallelism
		compiler, err := core.NewCompiler(data)
		if err != nil {
			b.Fatal(err)
		}
		result, err := compiler.Compile(campaign)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{1: "p1", 2: "p2", 4: "p4"}[parallelism], func(b *testing.B) {
			var latency float64
			for i := 0; i < b.N; i++ {
				report, err := run.Run(ctx, campaign, result.Chosen)
				if err != nil {
					b.Fatal(err)
				}
				latency, _ = report.Measured.Get(model.IndicatorLatency)
			}
			b.ReportMetric(latency, "latency_ms")
			b.ReportMetric(float64(result.Chosen.Plan.Parallelism), "parallelism")
		})
	}
}
