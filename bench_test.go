package toreador

// bench_test.go is the benchmark harness that regenerates every table and
// figure of the experiment suite (DESIGN.md §3, EXPERIMENTS.md). Each
// Benchmark* function drives the corresponding experiment in
// internal/experiments and reports its headline numbers as benchmark metrics,
// so `go test -bench=. -benchmem` reproduces the full evaluation. The
// cmd/toreador-bench command prints the same experiments as human-readable
// tables.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/analytics"
	"repro/internal/cluster"
	"repro/internal/dataflow"
	"repro/internal/experiments"
	"repro/internal/labs"
	"repro/internal/planner"
	"repro/internal/storage"
	"repro/internal/workload"
)

// benchSizing keeps the synthetic datasets small enough that the whole bench
// suite completes in a couple of minutes while still exercising every code
// path with real computation.
var benchSizing = workload.Sizing{Customers: 800, Meters: 4, Days: 5, Users: 100}

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.NewEnv(1, benchSizing)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkTable1ChallengeCatalog enumerates the design space of every Labs
// challenge (Table 1).
func BenchmarkTable1ChallengeCatalog(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var last *experiments.Table1
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable1(env)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	total, compliant := 0, 0
	for _, r := range last.Rows {
		total += r.Alternatives
		compliant += r.CompliantAlternatives
	}
	b.ReportMetric(float64(total), "alternatives")
	b.ReportMetric(float64(compliant), "compliant")
}

// BenchmarkTable2AlternativeComparison executes one alternative per
// classifier of the churn challenge and compares the measured indicators
// (Table 2).
func BenchmarkTable2AlternativeComparison(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	var last *experiments.Table2
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable2(ctx, env)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	best, worst := 0.0, 1.0
	for _, r := range last.Rows {
		if !r.Compliant {
			continue
		}
		if r.Accuracy > best {
			best = r.Accuracy
		}
		if r.Accuracy < worst {
			worst = r.Accuracy
		}
	}
	b.ReportMetric(best, "best_accuracy")
	b.ReportMetric(worst, "worst_accuracy")
	b.ReportMetric(float64(len(last.Rows)), "alternatives_run")
}

// BenchmarkFigure1Interference sweeps the privacy regime for the churn and
// fraud challenges (Figure 1).
func BenchmarkFigure1Interference(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var last *experiments.Figure1
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure1(env)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.StopTimer()
	churn := last.Points["telco-churn"]
	b.ReportMetric(float64(churn[0].CompliantAlternatives), "compliant_at_none")
	b.ReportMetric(float64(churn[len(churn)-1].CompliantAlternatives), "compliant_at_strict")
}

// BenchmarkFigure2EngineScalability sweeps workers and input sizes over the
// representative dataflow pipeline (Figure 2).
func BenchmarkFigure2EngineScalability(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	workers := []int{1, 2, 4, 8}
	rows := []int{20000, 80000}
	b.ResetTimer()
	var last *experiments.Figure2
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure2(ctx, env, workers, rows)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.StopTimer()
	maxSpeedup := 0.0
	for _, p := range last.Points {
		if p.SpeedupVs1 > maxSpeedup {
			maxSpeedup = p.SpeedupVs1
		}
	}
	b.ReportMetric(maxSpeedup, "max_speedup")
}

// BenchmarkTable3PlannerBaseline compares the model-driven planner against
// the greedy heuristic and the manual random baseline (Table 3).
func BenchmarkTable3PlannerBaseline(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var last *experiments.Table3
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable3(env)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	var exhaustive, random float64
	var n float64
	for _, r := range last.Rows {
		switch r.Strategy {
		case planner.StrategyExhaustive:
			exhaustive += r.EffectiveScore
			n++
		case planner.StrategyRandom:
			random += r.EffectiveScore
		}
	}
	if n > 0 {
		b.ReportMetric(exhaustive/n, "exhaustive_score")
		b.ReportMetric(random/n, "random_score")
	}
}

// BenchmarkFigure3DeploymentCrossover sweeps the event volume and compares
// batch and streaming deployments against the fraud challenge's freshness SLA
// (Figure 3).
func BenchmarkFigure3DeploymentCrossover(b *testing.B) {
	env := benchEnv(b)
	rows := []int{1000, 10_000, 100_000, 1_000_000, 5_000_000}
	b.ResetTimer()
	var last *experiments.Figure3
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure3(env, rows)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.StopTimer()
	crossover := 0.0
	for _, p := range last.Points {
		if p.StreamMeetsSLA && !p.BatchMeetsSLA {
			crossover = float64(p.Rows)
			break
		}
	}
	b.ReportMetric(crossover, "crossover_rows")
}

// BenchmarkTable4CompilationCost measures per-phase compilation cost against
// the cost of executing the chosen pipeline (Table 4).
func BenchmarkTable4CompilationCost(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	var last *experiments.Table4
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable4(ctx, env)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	var compileMS, execMS float64
	for _, r := range last.Rows {
		compileMS += float64(r.TotalCompile.Microseconds()) / 1000
		execMS += float64(r.Execution.Microseconds()) / 1000
	}
	b.ReportMetric(compileMS, "compile_ms_total")
	b.ReportMetric(execMS, "execute_ms_total")
}

// BenchmarkFigure4TrialAndError simulates trainee learning curves on the
// churn challenge (Figure 4).
func BenchmarkFigure4TrialAndError(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	var last *experiments.Figure4
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure4(ctx, env, 4)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.StopTimer()
	guided := last.Curves[labs.TraineeGuided]
	random := last.Curves[labs.TraineeRandom]
	b.ReportMetric(guided[0], "guided_first_attempt")
	b.ReportMetric(random[0], "random_first_attempt")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core BDAaaS operations (ablation-level detail).
// ---------------------------------------------------------------------------

func benchPlatformAndCampaign(b *testing.B) (*Platform, *Campaign) {
	b.Helper()
	p, err := New(Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.RegisterScenario(VerticalTelco, Sizing{Customers: 800}); err != nil {
		b.Fatal(err)
	}
	campaign := &Campaign{
		Name:     "bench-churn",
		Vertical: string(VerticalTelco),
		Goal: Goal{
			Task:           TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "monthly_charge", "support_calls", "dropped_calls"},
		},
		Sources: []DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []Objective{
			{Indicator: IndicatorAccuracy, Comparison: AtLeast, Target: 0.75, Hard: true},
			{Indicator: IndicatorCost, Comparison: AtMost, Target: 2},
		},
		Regime: RegimePseudonymize,
	}
	return p, campaign
}

// BenchmarkCompileCampaign measures the full model-driven compilation
// (enumerate + select) of the churn campaign.
func BenchmarkCompileCampaign(b *testing.B) {
	p, campaign := benchPlatformAndCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Compile(campaign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateAlternatives measures design-space enumeration alone.
func BenchmarkEnumerateAlternatives(b *testing.B) {
	p, campaign := benchPlatformAndCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Alternatives(campaign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteChosenPipeline measures running the chosen pipeline
// (preparation + training + evaluation) on the simulated cluster.
func BenchmarkExecuteChosenPipeline(b *testing.B) {
	p, campaign := benchPlatformAndCampaign(b)
	result, err := p.Compile(campaign)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(ctx, campaign, result.Chosen); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterferenceSweep measures the regime sweep used by Figure 1.
func BenchmarkInterferenceSweep(b *testing.B) {
	p, campaign := benchPlatformAndCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Interference(campaign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures synthetic scenario generation, the
// substrate every experiment depends on.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen := workload.NewGenerator(int64(i + 1))
		if _, err := gen.Generate(workload.VerticalTelco, workload.Sizing{Customers: 800, Meters: 1, Days: 1, Users: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Stage-compiler benchmarks (DESIGN.md §2.3): fused vs per-operator execution
// of narrow chains, and map-side combined vs row-at-a-time group-by.
// ---------------------------------------------------------------------------

// stageBenchEngine builds an engine over a fresh 2x2 cluster with the stage
// compiler and map-side combine either both on or both off.
func stageBenchEngine(b *testing.B, optimized bool) *dataflow.Engine {
	b.Helper()
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		b.Fatal(err)
	}
	e, err := dataflow.NewEngine(c,
		dataflow.WithFusion(optimized),
		dataflow.WithMapSideCombine(optimized))
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func stageBenchRows(n int) (*storage.Schema, []storage.Row) {
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
	)
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{int64(i % 50), float64(i%1000) / 10}
	}
	return schema, rows
}

// BenchmarkNarrowChain executes a 4-operator narrow chain with the stage
// compiler fused into one cluster job per action ("fused") and with one job
// plus a full intermediate materialisation per operator ("unfused"). The
// tasks/op metric shows the scheduling difference: 8 fused vs 32 unfused.
func BenchmarkNarrowChain(b *testing.B) {
	const rows = 100_000
	schema, data := stageBenchRows(rows)
	plan := dataflow.FromRows("bench", schema, data, 8).
		Filter("v >= 5", func(r dataflow.Record) (bool, error) { return r.Float("v") >= 5, nil }).
		Filter("k not multiple of 7", func(r dataflow.Record) (bool, error) { return r.Int("k")%7 != 0, nil }).
		Sample(0.9, 42).
		Filter("v < 95", func(r dataflow.Record) (bool, error) { return r.Float("v") < 95, nil })
	ctx := context.Background()
	for _, mode := range []struct {
		name      string
		optimized bool
	}{{"fused", true}, {"unfused", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := stageBenchEngine(b, mode.optimized)
			b.ReportAllocs()
			b.ResetTimer()
			var last *dataflow.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Collect(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.Tasks), "tasks/op")
			b.ReportMetric(float64(last.Stats.FusedStages), "fused_stages/op")
		})
	}
}

// BenchmarkGroupByCombine aggregates 50k rows over 50 keys with and without
// the map-side combine pass. The shuffled_rows metric shows the traffic
// difference: at most partitions×keys partial groups cross the shuffle when
// combining, versus every input row without it.
func BenchmarkGroupByCombine(b *testing.B) {
	const rows = 50_000
	schema, data := stageBenchRows(rows)
	plan := dataflow.FromRows("bench", schema, data, 8).
		GroupBy("k").
		Agg(dataflow.Count(), dataflow.Sum("v"), dataflow.Avg("v"))
	ctx := context.Background()
	for _, mode := range []struct {
		name      string
		optimized bool
	}{{"combined", true}, {"uncombined", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := stageBenchEngine(b, mode.optimized)
			b.ReportAllocs()
			b.ResetTimer()
			var last *dataflow.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Collect(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.ShuffledRows), "shuffled_rows/op")
			b.ReportMetric(float64(last.Stats.CombinedRows), "combined_rows/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Wide-operator strategy benchmarks (DESIGN.md §2.5): range vs single-task
// sort, broadcast vs shuffled join, map-side vs shuffle-everything distinct.
// Each pair toggles exactly one strategy switch; allocation counts compare
// the binary-key-encoder paths under the two traffic patterns.
// ---------------------------------------------------------------------------

// wideBenchEngine builds an engine over a fresh 2x2 cluster with the given
// strategy overrides on top of the defaults.
func wideBenchEngine(b *testing.B, opts ...dataflow.EngineOption) *dataflow.Engine {
	b.Helper()
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		b.Fatal(err)
	}
	e, err := dataflow.NewEngine(c, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// wideBenchRows builds n rows with keys cycling over the given cardinality
// and a deterministic scrambled value column (unsorted input for the sort
// benchmarks).
func wideBenchRows(n, keys int) (*storage.Schema, []storage.Row) {
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
	)
	rows := make([]storage.Row, n)
	for i := range rows {
		scrambled := (uint64(i) * 2654435761) % 1_000_003
		rows[i] = storage.Row{int64(i % keys), float64(scrambled)}
	}
	return schema, rows
}

// BenchmarkSortRange sorts 120k scrambled rows with the range-partitioned
// parallel sort ("range") and with the single-task global sort ("single").
// The tasks/op metric shows the parallelism difference: one sorting task per
// shuffle partition versus one for the whole dataset.
func BenchmarkSortRange(b *testing.B) {
	const rows = 120_000
	schema, data := wideBenchRows(rows, rows)
	plan := dataflow.FromRows("bench", schema, data, 8).Sort(dataflow.SortOrder{Column: "v"})
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"range", true}, {"single", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b, dataflow.WithRangeSort(mode.enabled))
			b.ReportAllocs()
			b.ResetTimer()
			var last *dataflow.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Collect(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.Tasks), "tasks/op")
			b.ReportMetric(float64(last.Stats.SortSampledRows), "sampled_rows/op")
		})
	}
}

// BenchmarkJoinBroadcast joins 100k fact rows against a 64-row dimension
// table with the broadcast strategy ("broadcast") and the shuffled hash join
// ("shuffled"). The shuffled_rows metric shows the traffic the broadcast
// avoids: zero versus both inputs.
func BenchmarkJoinBroadcast(b *testing.B) {
	const rows = 100_000
	schema, data := wideBenchRows(rows, 64)
	dimSchema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "name", Type: storage.TypeString},
	)
	dims := make([]storage.Row, 64)
	for i := range dims {
		dims[i] = storage.Row{int64(i), fmt.Sprintf("dim-%02d", i)}
	}
	plan := dataflow.FromRows("facts", schema, data, 8).
		Join(dataflow.FromRows("dims", dimSchema, dims, 2), "k", "k", dataflow.InnerJoin)
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"broadcast", true}, {"shuffled", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b, dataflow.WithBroadcastJoin(mode.enabled))
			b.ReportAllocs()
			b.ResetTimer()
			var last *dataflow.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Collect(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.ShuffledRows), "shuffled_rows/op")
			b.ReportMetric(float64(last.Stats.BroadcastJoins), "broadcast_joins/op")
		})
	}
}

// BenchmarkDistinctCombine dedups 100k rows over 500 keys with the map-side
// dedup pass ("map-side") and with every row crossing the shuffle
// ("shuffle-all"). precombined_rows shows the duplicates removed before the
// shuffle; allocation counts show the cost of re-keying shuffled rows on the
// reduce side.
func BenchmarkDistinctCombine(b *testing.B) {
	const rows = 100_000
	schema, data := wideBenchRows(rows, 500)
	plan := dataflow.FromRows("bench", schema, data, 8).Distinct("k")
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"map-side", true}, {"shuffle-all", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b, dataflow.WithMapSideDistinct(mode.enabled))
			b.ReportAllocs()
			b.ResetTimer()
			var last *dataflow.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Collect(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.ShuffledRows), "shuffled_rows/op")
			b.ReportMetric(float64(last.Stats.DistinctPrecombinedRows), "precombined_rows/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Vectorized-execution benchmarks (DESIGN.md §2.6): columnar batch kernels vs
// the row-at-a-time baseline. Each pair toggles only WithVectorizedExecution;
// fusion stays on in both arms, so the comparison isolates the batch layer.
// ---------------------------------------------------------------------------

// vectorBenchPlan builds the 4-operator narrow chain the vectorized ablation
// runs: filter → project → with_column → project. Three of the four
// operators are pure column kernels under vectorized execution (the filter
// evaluates its closure through zero-copy batch views and emits a selection
// vector), while the row path materialises a fresh boxed row per operator.
func vectorBenchPlan(rows int) *dataflow.Dataset {
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
		storage.Field{Name: "w", Type: storage.TypeFloat},
	)
	data := make([]storage.Row, rows)
	for i := range data {
		scrambled := (uint64(i) * 2654435761) % 1_000_003
		data[i] = storage.Row{int64(i % 5000), float64(i%1000) / 10, float64(scrambled % 97)}
	}
	return dataflow.FromRows("bench", schema, data, 8).
		Filter("v >= 10", func(r dataflow.Record) (bool, error) { return r.Float("v") >= 10, nil }).
		Project("k", "v").
		WithColumn(storage.Field{Name: "decile", Type: storage.TypeInt},
			func(r dataflow.Record) (storage.Value, error) { return r.Int("v") / 10, nil }).
		Project("k", "decile")
}

// BenchmarkVectorizedChain executes the 4-operator chain over 150k rows with
// columnar batch kernels ("vectorized") and with the fused row pipeline
// ("row"). The Count action keeps result materialisation out of both arms, so
// the numbers compare the execution strategies themselves.
func BenchmarkVectorizedChain(b *testing.B) {
	const rows = 150_000
	plan := vectorBenchPlan(rows)
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"vectorized", true}, {"row", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b, dataflow.WithVectorizedExecution(mode.enabled))
			b.ReportAllocs()
			b.ResetTimer()
			var last dataflow.Stats
			for i := 0; i < b.N; i++ {
				n, stats, err := e.CountStats(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("chain produced no rows")
				}
				last = stats
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Batches), "batches/op")
			b.ReportMetric(float64(last.BatchRows), "batch_rows/op")
		})
	}
}

// BenchmarkVectorizedShuffle appends a distinct to the 4-operator chain, so
// every surviving row is keyed and shuffled: vectorized, keys are encoded
// straight from the column vectors and survivors move by batch index;
// row-at-a-time, every surviving row is a boxed Row that is keyed, wrapped
// and shuffled individually.
func BenchmarkVectorizedShuffle(b *testing.B) {
	const rows = 150_000
	plan := vectorBenchPlan(rows).Distinct("k", "decile")
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"vectorized", true}, {"row", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b, dataflow.WithVectorizedExecution(mode.enabled))
			b.ReportAllocs()
			b.ResetTimer()
			var last dataflow.Stats
			for i := 0; i < b.N; i++ {
				n, stats, err := e.CountStats(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("distinct produced no rows")
				}
				last = stats
			}
			b.StopTimer()
			b.ReportMetric(float64(last.ShuffledRows), "shuffled_rows/op")
			b.ReportMetric(float64(last.Batches), "batches/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Spill-to-disk benchmarks (DESIGN.md §2.7): wide operators with the
// partition-store accumulation kept fully resident ("memory") versus forced
// to spill every batch through the binary codec to temp files ("spill").
// Each pair runs the identical plan; the spilled_batches/spilled_bytes
// metrics confirm the spill arm actually hit disk, and the time/bytes deltas
// price the codec + I/O overhead that buys larger-than-RAM inputs.
// ---------------------------------------------------------------------------

// BenchmarkSpillShuffle joins 100k fact rows against a dimension table with
// broadcasting disabled, so both sides hash-shuffle through partition stores.
// The spill arm's one-byte budget forces every bucket chunk to disk and back.
func BenchmarkSpillShuffle(b *testing.B) {
	const rows = 100_000
	schema, data := wideBenchRows(rows, 64)
	dimSchema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "segment", Type: storage.TypeString},
	)
	dim := make([]storage.Row, 64)
	for i := range dim {
		dim[i] = storage.Row{int64(i), fmt.Sprintf("segment-%d", i%8)}
	}
	plan := dataflow.FromRows("facts", schema, data, 8).
		Join(dataflow.FromRows("dims", dimSchema, dim, 2), "k", "k", dataflow.InnerJoin)
	ctx := context.Background()
	for _, mode := range []struct {
		name   string
		budget int64
	}{{"memory", 0}, {"spill", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b,
				dataflow.WithBroadcastJoin(false),
				dataflow.WithMemoryBudget(mode.budget))
			b.ReportAllocs()
			b.ResetTimer()
			var last dataflow.Stats
			for i := 0; i < b.N; i++ {
				n, stats, err := e.CountStats(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("join produced no rows")
				}
				last = stats
			}
			b.StopTimer()
			b.ReportMetric(float64(last.SpilledBatches), "spilled_batches/op")
			b.ReportMetric(float64(last.SpilledBytes), "spilled_bytes/op")
			b.ReportMetric(float64(last.SpillLogicalBytes), "spill_logical_bytes/op")
			b.ReportMetric(float64(last.ShuffledRows), "shuffled_rows/op")
		})
	}
}

// BenchmarkSpillGroupBy aggregates 100k rows over 512 keys on the
// non-combined columnar group-by (every row crosses the shuffle, the shape
// that actually exceeds RAM), resident versus forced to spill.
func BenchmarkSpillGroupBy(b *testing.B) {
	const rows = 100_000
	schema, data := wideBenchRows(rows, 512)
	plan := dataflow.FromRows("bench", schema, data, 8).
		GroupBy("k").
		Agg(dataflow.Count(), dataflow.Sum("v"), dataflow.Max("v"))
	ctx := context.Background()
	for _, mode := range []struct {
		name   string
		budget int64
	}{{"memory", 0}, {"spill", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b,
				dataflow.WithMapSideCombine(false),
				dataflow.WithMemoryBudget(mode.budget))
			b.ReportAllocs()
			b.ResetTimer()
			var last dataflow.Stats
			for i := 0; i < b.N; i++ {
				n, stats, err := e.CountStats(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("group-by produced no rows")
				}
				last = stats
			}
			b.StopTimer()
			b.ReportMetric(float64(last.SpilledBatches), "spilled_batches/op")
			b.ReportMetric(float64(last.SpilledBytes), "spilled_bytes/op")
			b.ReportMetric(float64(last.SpillLogicalBytes), "spill_logical_bytes/op")
			b.ReportMetric(float64(last.ShuffledRows), "shuffled_rows/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Spill-compression benchmarks (DESIGN.md §2.11): identical forced-spill
// plans with the compressed v2 frame codec (dictionary strings, delta ints,
// RLE bitmaps) versus the raw v1 layout. The physical/logical byte metrics
// price what compression buys in disk traffic; the wall-time delta prices
// what the encoder costs. Both arms must produce bit-identical results — the
// equivalence suite pins that; these pairs measure it.
// ---------------------------------------------------------------------------

// spillStringRows builds a string-heavy fact table: low-cardinality region
// and category columns (the dictionary encoder's best case and the realistic
// shape of the paper's telco/retail scenarios), a monotonically increasing id
// (the delta encoder's best case) and a scrambled float payload that stays
// raw.
func spillStringRows(n int) (*storage.Schema, []storage.Row) {
	schema := storage.MustSchema(
		storage.Field{Name: "id", Type: storage.TypeInt},
		storage.Field{Name: "region", Type: storage.TypeString},
		storage.Field{Name: "category", Type: storage.TypeString},
		storage.Field{Name: "v", Type: storage.TypeFloat},
	)
	regions := []string{"emea-central", "emea-west", "amer-north", "amer-south", "apac-east", "apac-west"}
	categories := []string{"electricity", "gas", "water", "broadband"}
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			int64(1_000_000 + i),
			regions[(i/7)%len(regions)],
			categories[i%len(categories)],
			float64((uint64(i)*2654435761)%1_000_003) / 64,
		}
	}
	return schema, rows
}

// BenchmarkSpillCompression runs a non-combined string-keyed group-by over
// 100k string-heavy rows with a one-byte budget, so every shuffle bucket and
// every flushed aggregation epoch crosses the codec: compressed v2 frames
// versus raw v1. compression_ratio = logical/physical bytes on the compressed
// arm (the raw arm reports 1).
func BenchmarkSpillCompression(b *testing.B) {
	const rows = 100_000
	schema, data := spillStringRows(rows)
	plan := dataflow.FromRows("bench", schema, data, 8).
		GroupBy("region").
		Agg(dataflow.Count(), dataflow.Sum("v"), dataflow.Max("category"))
	ctx := context.Background()
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"compressed", true}, {"raw", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b,
				dataflow.WithMapSideCombine(false),
				dataflow.WithMemoryBudget(1),
				dataflow.WithSpillCompression(mode.compress))
			b.ReportAllocs()
			b.ResetTimer()
			var last dataflow.Stats
			for i := 0; i < b.N; i++ {
				n, stats, err := e.CountStats(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("group-by produced no rows")
				}
				last = stats
			}
			b.StopTimer()
			if last.SpilledBatches == 0 {
				b.Fatal("spill-compression arm never spilled")
			}
			b.ReportMetric(float64(last.SpilledBytes), "spilled_bytes/op")
			b.ReportMetric(float64(last.SpillLogicalBytes), "spill_logical_bytes/op")
			b.ReportMetric(float64(last.SpillLogicalBytes)/float64(last.SpilledBytes), "compression_ratio")
		})
	}
}

// BenchmarkDistinctDictCodes runs distinct on a low-cardinality string key
// with map-side dedup off and a one-byte budget, so the merge side streams
// every restored frame through the seen-key filter: with compression on, the
// dictionary-code fast path decides repeated codes with one slice index
// instead of a key encode plus map probe per row; the raw arm pays the full
// per-row path.
func BenchmarkDistinctDictCodes(b *testing.B) {
	const rows = 100_000
	schema, data := spillStringRows(rows)
	plan := dataflow.FromRows("bench", schema, data, 8).
		Project("region", "category").
		Distinct("region")
	ctx := context.Background()
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"dict-codes", true}, {"raw", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b,
				dataflow.WithMapSideDistinct(false),
				dataflow.WithMemoryBudget(1),
				dataflow.WithSpillCompression(mode.compress))
			b.ReportAllocs()
			b.ResetTimer()
			var last dataflow.Stats
			for i := 0; i < b.N; i++ {
				n, stats, err := e.CountStats(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("distinct produced no rows")
				}
				last = stats
			}
			b.StopTimer()
			if last.SpilledBatches == 0 {
				b.Fatal("distinct arm never spilled")
			}
			b.ReportMetric(float64(last.SpilledBytes), "spilled_bytes/op")
			b.ReportMetric(float64(last.SpillLogicalBytes), "spill_logical_bytes/op")
			b.ReportMetric(float64(last.ShuffledRows), "shuffled_rows/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Columnar sort benchmarks (DESIGN.md §2.8): the typed-key selection-vector
// sort core vs the boxed-row sort, and the spill-aware external merge vs the
// unlimited in-memory columnar sort.
// ---------------------------------------------------------------------------

// sortBenchPlan builds the 4-key 100k-row sort the ablation pairs run: four
// duplicate-heavy key columns covering every typed kernel (int, float,
// string, bool) plus a unique payload column, sorted with mixed directions so
// multi-key tie-breaking is exercised on every comparison path. A leading
// filter stage (both arms run it vectorized) leaves the sort batch-backed
// partitions, the shape every columnar pipeline hands its sort: the boxed arm
// must materialise those batches back into rows, the typed arm sorts them in
// place.
func sortBenchPlan(rows int) *dataflow.Dataset {
	schema := storage.MustSchema(
		storage.Field{Name: "ki", Type: storage.TypeInt},
		storage.Field{Name: "kf", Type: storage.TypeFloat},
		storage.Field{Name: "ks", Type: storage.TypeString},
		storage.Field{Name: "kb", Type: storage.TypeBool},
		storage.Field{Name: "id", Type: storage.TypeInt},
	)
	data := make([]storage.Row, rows)
	for i := range data {
		scrambled := (uint64(i) * 2654435761) % 1_000_003
		data[i] = storage.Row{
			int64(scrambled % 50),
			float64(scrambled%9) / 4,
			"s" + string(rune('a'+scrambled%11)),
			scrambled%2 == 0,
			int64(i),
		}
	}
	return dataflow.FromRows("sortbench", schema, data, 8).
		Filter("id >= 0", func(r dataflow.Record) (bool, error) { return r.Int("id") >= 0, nil }).
		Sort(
			dataflow.SortOrder{Column: "ki"},
			dataflow.SortOrder{Column: "kf", Descending: true},
			dataflow.SortOrder{Column: "ks"},
			dataflow.SortOrder{Column: "kb", Descending: true},
		)
}

// BenchmarkSortColumnar sorts 100k rows on four typed keys with the
// selection-vector sort core ("typed") and with the boxed-row core ("boxed",
// WithColumnarSort(false)) — the latter materialises every batch back into
// boxed rows and compares through interface values, which is where both the
// allocation and the time gap come from. Both arms use CountStats, so the
// numbers compare the sort cores, not result materialisation.
func BenchmarkSortColumnar(b *testing.B) {
	const rows = 100_000
	plan := sortBenchPlan(rows)
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"typed", true}, {"boxed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b, dataflow.WithColumnarSort(mode.enabled))
			b.ReportAllocs()
			b.ResetTimer()
			var last dataflow.Stats
			for i := 0; i < b.N; i++ {
				n, stats, err := e.CountStats(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				if n != rows {
					b.Fatalf("sort produced %d rows, want %d", n, rows)
				}
				last = stats
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Tasks), "tasks/op")
			b.ReportMetric(float64(last.SortSampledRows), "sampled_rows/op")
		})
	}
}

// BenchmarkSortExternal runs the 4-key 100k-row sort with the unlimited
// in-memory columnar core ("unlimited") and forced through the external
// merge ("budgeted", one-byte budget: every range-shuffle chunk and every
// sorted run spills through the codec). The peak_resident metric is the
// measured side of the runs × chunk memory bound, asserted against the
// BatchMemSize of one full chunk; results are checked bit-identical outside
// the timed loops.
func BenchmarkSortExternal(b *testing.B) {
	const rows = 100_000
	plan := sortBenchPlan(rows)
	ctx := context.Background()

	// Equivalence gate: the budgeted external merge must reproduce the
	// in-memory ordering bit for bit.
	baseRes, err := wideBenchEngine(b).Collect(ctx, plan)
	if err != nil {
		b.Fatal(err)
	}
	extRes, err := wideBenchEngine(b, dataflow.WithMemoryBudget(1)).Collect(ctx, plan)
	if err != nil {
		b.Fatal(err)
	}
	if len(baseRes.Rows) != len(extRes.Rows) {
		b.Fatalf("external sort emitted %d rows, in-memory %d", len(extRes.Rows), len(baseRes.Rows))
	}
	for i := range baseRes.Rows {
		if !reflect.DeepEqual(baseRes.Rows[i], extRes.Rows[i]) {
			b.Fatalf("external sort row %d = %#v, in-memory %#v", i, extRes.Rows[i], baseRes.Rows[i])
		}
	}
	chunk, err := storage.BatchFromRows(baseRes.Schema, baseRes.Rows[:dataflow.SortChunkRows])
	if err != nil {
		b.Fatal(err)
	}
	chunkMem := storage.BatchMemSize(chunk)

	for _, mode := range []struct {
		name   string
		budget int64
	}{{"unlimited", 0}, {"budgeted", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			e := wideBenchEngine(b, dataflow.WithMemoryBudget(mode.budget))
			b.ReportAllocs()
			b.ResetTimer()
			var last dataflow.Stats
			for i := 0; i < b.N; i++ {
				n, stats, err := e.CountStats(ctx, plan)
				if err != nil {
					b.Fatal(err)
				}
				if n != rows {
					b.Fatalf("sort produced %d rows, want %d", n, rows)
				}
				last = stats
			}
			b.StopTimer()
			if mode.budget > 0 {
				if last.SortRuns == 0 || last.SortMergedBatches == 0 {
					b.Fatalf("budgeted sort must merge spilled runs, got runs=%d merged=%d",
						last.SortRuns, last.SortMergedBatches)
				}
				if last.SortPeakResidentBytes > last.SortRuns*chunkMem {
					b.Fatalf("sort peak resident %d exceeds runs(%d) × chunk(%d)",
						last.SortPeakResidentBytes, last.SortRuns, chunkMem)
				}
			}
			b.ReportMetric(float64(last.SortRuns), "sort_runs/op")
			b.ReportMetric(float64(last.SortMergedBatches), "merged_batches/op")
			b.ReportMetric(float64(last.SortPeakResidentBytes), "peak_resident_bytes/op")
			b.ReportMetric(float64(last.SpilledBytes), "spilled_bytes/op")
		})
	}
}

// BenchmarkComplianceEvaluation measures a single compliance evaluation, the
// inner loop of alternative elaboration.
func BenchmarkComplianceEvaluation(b *testing.B) {
	p, campaign := benchPlatformAndCampaign(b)
	alternatives, err := p.Alternatives(campaign)
	if err != nil {
		b.Fatal(err)
	}
	// Re-evaluate the chosen alternative's objectives as a proxy for the
	// planner's scoring loop (pure CPU, no I/O).
	var decisions int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := p.Plan(campaign, StrategyExhaustive)
		if err != nil {
			b.Fatal(err)
		}
		if d.Feasible {
			decisions++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(alternatives)), "alternatives")
	b.ReportMetric(float64(decisions), "feasible_decisions")
}

// BenchmarkFigure5ServiceLoad drives the multi-tenant service runtime under
// concurrent submission pressure with injected cluster faults (Figure 5).
func BenchmarkFigure5ServiceLoad(b *testing.B) {
	env := benchEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	var last *experiments.Figure5
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure5(ctx, env, []int{1, 4}, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.StopTimer()
	for _, p := range last.Points {
		if !p.Accounted {
			b.Fatalf("%d tenants: submissions lost: %+v", p.Tenants, p)
		}
	}
	high := last.Points[len(last.Points)-1]
	b.ReportMetric(high.GoodputRPS, "goodput_rps_4t")
	b.ReportMetric(high.P99MS, "p99_ms_4t")
	b.ReportMetric(float64(high.Rejected+high.Shed), "pushback_4t")
}

// ---------------------------------------------------------------------------
// Iterative dataflow (Figure 6)
// ---------------------------------------------------------------------------

// iterBenchEngine builds a fresh default engine for the iterate benchmarks.
func iterBenchEngine(b *testing.B, opts ...dataflow.EngineOption) *dataflow.Engine {
	b.Helper()
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		b.Fatal(err)
	}
	e, err := dataflow.NewEngine(c, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// iterBenchBlobs builds k well-separated 2-d blobs deterministically (no RNG:
// points are laid out on small per-blob grids) so every arm clusters the same
// data.
func iterBenchBlobs(perBlob int) analytics.Matrix {
	centers := [][2]float64{{0, 0}, {40, 40}, {-40, 40}}
	x := make(analytics.Matrix, 0, 3*perBlob)
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			x = append(x, []float64{
				c[0] + float64(i%10)/4,
				c[1] + float64(i/10)/4,
			})
		}
	}
	return x
}

// BenchmarkIterateKMeans is the ablation pair for engine clustering: the same
// Lloyd fit run as an Iterate plan on the dataflow engine ("engine") and as
// the in-process hand-rolled loop ("hand"). Both arms produce bit-identical
// assignments and centroids (pinned by tests); the pair prices what running
// the loop through the engine costs and records its convergence depth.
func BenchmarkIterateKMeans(b *testing.B) {
	x := iterBenchBlobs(200)
	ctx := context.Background()

	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var last *analytics.EngineKMeansResult
		for i := 0; i < b.N; i++ {
			em := &analytics.EngineKMeans{K: 3, Seed: 11}
			res, err := em.Fit(ctx, iterBenchEngine(b), x)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.StopTimer()
		if !last.Stats.IterateConverged {
			b.Fatal("engine k-means must converge on separated blobs")
		}
		b.ReportMetric(float64(last.Stats.IterateIterations), "iterations")
		b.ReportMetric(float64(last.Stats.IterateDeltaRows), "delta_rows")
	})
	b.Run("hand", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			km := &analytics.KMeans{K: 3, Seed: 11}
			if err := km.Fit(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIterateReachability drives the Figure 6 min-label propagation loop
// (join → union → group-by → sort per pass) to its fixpoint, resident and
// with the loop state staged through the one-byte-budget spill store.
func BenchmarkIterateReachability(b *testing.B) {
	ctx := context.Background()
	env := benchEnv(b)
	for _, arm := range []struct {
		name     string
		rowSweep []int
		budgeted bool
	}{{"resident", []int{256}, false}, {"budgeted", []int{256}, true}} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var last experiments.Figure6Point
			for i := 0; i < b.N; i++ {
				fig, err := experiments.RunFigure6(ctx, env, arm.rowSweep)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range fig.Points {
					if p.Pipeline == "label-prop" && p.Budgeted == arm.budgeted {
						last = p
					}
				}
			}
			b.StopTimer()
			if !last.Converged {
				b.Fatal("label propagation must converge")
			}
			b.ReportMetric(float64(last.Iterations), "iterations")
			b.ReportMetric(float64(last.DeltaRows), "delta_rows")
			b.ReportMetric(float64(last.SpilledBatches), "spilled_batches")
		})
	}
}

// BenchmarkFigure7DurableTables measures the durable-table materialisation
// loop (Figure 7): run the preparation pipeline, commit the result to the
// crash-safe segment store, and read it back whole and under a selective
// zone-map-pruned predicate. The reported metrics are the headline artifact
// numbers: segments skipped by the pushdown and the verified bit-identity of
// re-read vs recompute.
func BenchmarkFigure7DurableTables(b *testing.B) {
	ctx := context.Background()
	env := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	var last *experiments.Figure7
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFigure7(ctx, env, []int{8000})
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.StopTimer()
	p := last.Points[len(last.Points)-1]
	if !p.BitIdentical {
		b.Fatal("table re-read must be bit-identical to recompute")
	}
	if p.SegmentsSkipped == 0 {
		b.Fatal("selective scan must skip zone-mapped segments")
	}
	b.ReportMetric(float64(p.SegmentsSkipped), "segments_skipped")
	b.ReportMetric(float64(p.FramesSkipped), "frames_skipped")
}
