// Command energy-compliance runs the smart-meter forecasting campaign under
// a strict privacy regulation and shows the interference analysis: how
// tightening the privacy regime progressively removes design options in the
// other stages of the campaign (preparation, analytics, display, deployment).
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	toreador "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example end to end, writing its report to out. It is
// split from main so the smoke test can exercise the whole workflow.
func run(out io.Writer) error {
	platform, err := toreador.New(toreador.Config{Seed: 19})
	if err != nil {
		return fmt.Errorf("create platform: %w", err)
	}
	if _, err := platform.RegisterScenario(toreador.VerticalEnergy, toreador.Sizing{Meters: 20, Days: 14}); err != nil {
		return fmt.Errorf("register scenario: %w", err)
	}

	campaign := &toreador.Campaign{
		Name:     "energy-forecast",
		Vertical: string(toreador.VerticalEnergy),
		Goal: toreador.Goal{
			Task:        toreador.TaskForecasting,
			Description: "day-ahead forecast of household consumption",
			TargetTable: "meter_readings",
			ValueColumn: "kwh",
			TimeColumn:  "read_at",
		},
		Sources: []toreador.DataSource{{Table: "meter_readings", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []toreador.Objective{
			{Indicator: toreador.IndicatorAccuracy, Comparison: toreador.AtLeast, Target: 0.5, Hard: true, Weight: 2},
			{Indicator: toreador.IndicatorCost, Comparison: toreador.AtMost, Target: 2},
			{Indicator: toreador.IndicatorPrivacy, Comparison: toreador.AtLeast, Target: 0.9, Hard: true},
		},
		Regime: toreador.RegimeStrict,
	}

	// Interference analysis: sweep the regime and count surviving options.
	points, err := platform.Interference(campaign)
	if err != nil {
		return fmt.Errorf("interference: %w", err)
	}
	fmt.Fprintln(out, "=== interference of the privacy regime on the other design stages ===")
	fmt.Fprintf(out, "%-14s %12s %10s %12s %10s %10s %10s\n",
		"regime", "alternatives", "compliant", "preparation", "analytics", "display", "platforms")
	for _, p := range points {
		fmt.Fprintf(out, "%-14s %12d %10d %12d %10d %10d %10d\n",
			p.Regime, p.TotalAlternatives, p.CompliantAlternatives,
			p.PreparationOptions, p.AnalyticsOptions, p.DisplayOptions, p.PlatformOptions)
	}

	// Compile and run under the strict regime.
	result, report, err := platform.Execute(context.Background(), campaign)
	if err != nil {
		return fmt.Errorf("execute: %w", err)
	}
	fmt.Fprintf(out, "\nchosen pipeline under %q: %s\n", campaign.Regime, result.Chosen.Fingerprint())
	fmt.Fprintln(out, "\ncompliance obligations attached to the run:")
	for _, o := range result.Chosen.Compliance.Obligations {
		fmt.Fprintf(out, "  - %s\n", o)
	}
	fmt.Fprintln(out, "\nmeasured indicators:")
	fmt.Fprintf(out, "  %s\n", report.Measured)
	fmt.Fprintln(out, "\nobjective evaluation:")
	fmt.Fprint(out, report.Evaluation.Summary())
	return nil
}
