// Command labs-training demonstrates the TOREADOR Labs environment itself:
// it lists the built-in challenges, lets two simulated trainees attempt the
// churn challenge with different exploration strategies, compares their runs
// side by side, and prints the session leaderboard and the learning curves
// that show how guided trial-and-error converges faster than random poking.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	toreador "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example end to end, writing its report to out. It is
// split from main so the smoke test can exercise the whole workflow.
func run(out io.Writer) error {
	lab, err := toreador.OpenLab(29, toreador.Sizing{Customers: 800, Meters: 5, Days: 5, Users: 120})
	if err != nil {
		return fmt.Errorf("open lab: %w", err)
	}

	fmt.Fprintln(out, "=== TOREADOR Labs challenge catalog ===")
	for _, ch := range lab.Challenges() {
		alternatives, err := lab.Alternatives(ch.ID)
		if err != nil {
			return fmt.Errorf("alternatives for %s: %w", ch.ID, err)
		}
		compliant := 0
		for _, a := range alternatives {
			if a.Compliant() {
				compliant++
			}
		}
		fmt.Fprintf(out, "\n[%s] %s\n", ch.ID, ch.Title)
		fmt.Fprintf(out, "  vertical: %s | regime: %s | alternatives: %d (%d compliant)\n",
			ch.Vertical, ch.Campaign.Regime, len(alternatives), compliant)
		fmt.Fprintf(out, "  trainee choices: %v\n", ch.DegreesOfFreedom)
	}

	// A short training session on the churn challenge: alice follows the
	// platform's guidance, bob clicks around at random.
	ctx := context.Background()
	session := toreador.NewLabSession(lab)
	alternatives, err := lab.Alternatives("telco-churn")
	if err != nil {
		return fmt.Errorf("alternatives: %w", err)
	}
	guidedOrder := []int{}
	randomOrder := []int{}
	for i := range alternatives {
		if alternatives[i].Compliant() && len(guidedOrder) < 2 {
			guidedOrder = append(guidedOrder, i)
		}
	}
	randomOrder = append(randomOrder, 0, len(alternatives)/2)

	fmt.Fprintln(out, "\n=== training session: telco-churn ===")
	for _, idx := range guidedOrder {
		attempt, err := session.Submit(ctx, "alice", "telco-churn", idx)
		if err != nil {
			return fmt.Errorf("alice attempt: %w", err)
		}
		fmt.Fprintf(out, "alice attempt %d: %-70s score %.3f\n", attempt.Number, attempt.Fingerprint, attempt.Score)
	}
	for _, idx := range randomOrder {
		attempt, err := session.Submit(ctx, "bob", "telco-churn", idx)
		if err != nil {
			return fmt.Errorf("bob attempt: %w", err)
		}
		fmt.Fprintf(out, "bob   attempt %d: %-70s score %.3f\n", attempt.Number, attempt.Fingerprint, attempt.Score)
	}

	fmt.Fprintln(out, "\nside-by-side comparison of all runs (best first):")
	for _, row := range toreador.CompareAttempts(session.Attempts()) {
		fmt.Fprintf(out, "  %-6s score=%.3f compliant=%-5v feasible=%-5v %s\n",
			row.Trainee, row.Score, row.Compliant, row.Feasible, row.Measured)
	}

	fmt.Fprintln(out, "\nleaderboard:")
	for rank, entry := range session.Leaderboard() {
		fmt.Fprintf(out, "  %d. %-8s best-total=%.3f over %d challenge(s), %d attempts\n",
			rank+1, entry.Trainee, entry.BestTotal, entry.Challenges, entry.Attempts)
	}

	// Learning curves: guided vs random trial-and-error on the same challenge.
	fmt.Fprintln(out, "\nlearning curves (best score after k attempts):")
	for _, strategy := range []toreador.TraineeStrategy{toreador.TraineeGuided, toreador.TraineeRandom} {
		curve, err := lab.SimulateTrainee(ctx, "telco-churn", strategy, 4, 29)
		if err != nil {
			return fmt.Errorf("simulate %s: %w", strategy, err)
		}
		fmt.Fprintf(out, "  %-8s", strategy)
		for _, v := range curve {
			fmt.Fprintf(out, " %.3f", v)
		}
		fmt.Fprintln(out)
	}
	return nil
}
