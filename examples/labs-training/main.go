// Command labs-training demonstrates the TOREADOR Labs environment itself:
// it lists the built-in challenges, lets two simulated trainees attempt the
// churn challenge with different exploration strategies, compares their runs
// side by side, and prints the session leaderboard and the learning curves
// that show how guided trial-and-error converges faster than random poking.
package main

import (
	"context"
	"fmt"
	"log"

	toreador "repro"
)

func main() {
	lab, err := toreador.OpenLab(29, toreador.Sizing{Customers: 800, Meters: 5, Days: 5, Users: 120})
	if err != nil {
		log.Fatalf("open lab: %v", err)
	}

	fmt.Println("=== TOREADOR Labs challenge catalog ===")
	for _, ch := range lab.Challenges() {
		alternatives, err := lab.Alternatives(ch.ID)
		if err != nil {
			log.Fatalf("alternatives for %s: %v", ch.ID, err)
		}
		compliant := 0
		for _, a := range alternatives {
			if a.Compliant() {
				compliant++
			}
		}
		fmt.Printf("\n[%s] %s\n", ch.ID, ch.Title)
		fmt.Printf("  vertical: %s | regime: %s | alternatives: %d (%d compliant)\n",
			ch.Vertical, ch.Campaign.Regime, len(alternatives), compliant)
		fmt.Printf("  trainee choices: %v\n", ch.DegreesOfFreedom)
	}

	// A short training session on the churn challenge: alice follows the
	// platform's guidance, bob clicks around at random.
	ctx := context.Background()
	session := toreador.NewLabSession(lab)
	alternatives, err := lab.Alternatives("telco-churn")
	if err != nil {
		log.Fatalf("alternatives: %v", err)
	}
	guidedOrder := []int{}
	randomOrder := []int{}
	for i := range alternatives {
		if alternatives[i].Compliant() && len(guidedOrder) < 2 {
			guidedOrder = append(guidedOrder, i)
		}
	}
	randomOrder = append(randomOrder, 0, len(alternatives)/2)

	fmt.Println("\n=== training session: telco-churn ===")
	for _, idx := range guidedOrder {
		attempt, err := session.Submit(ctx, "alice", "telco-churn", idx)
		if err != nil {
			log.Fatalf("alice attempt: %v", err)
		}
		fmt.Printf("alice attempt %d: %-70s score %.3f\n", attempt.Number, attempt.Fingerprint, attempt.Score)
	}
	for _, idx := range randomOrder {
		attempt, err := session.Submit(ctx, "bob", "telco-churn", idx)
		if err != nil {
			log.Fatalf("bob attempt: %v", err)
		}
		fmt.Printf("bob   attempt %d: %-70s score %.3f\n", attempt.Number, attempt.Fingerprint, attempt.Score)
	}

	fmt.Println("\nside-by-side comparison of all runs (best first):")
	for _, row := range toreador.CompareAttempts(session.Attempts()) {
		fmt.Printf("  %-6s score=%.3f compliant=%-5v feasible=%-5v %s\n",
			row.Trainee, row.Score, row.Compliant, row.Feasible, row.Measured)
	}

	fmt.Println("\nleaderboard:")
	for rank, entry := range session.Leaderboard() {
		fmt.Printf("  %d. %-8s best-total=%.3f over %d challenge(s), %d attempts\n",
			rank+1, entry.Trainee, entry.BestTotal, entry.Challenges, entry.Attempts)
	}

	// Learning curves: guided vs random trial-and-error on the same challenge.
	fmt.Println("\nlearning curves (best score after k attempts):")
	for _, strategy := range []toreador.TraineeStrategy{toreador.TraineeGuided, toreador.TraineeRandom} {
		curve, err := lab.SimulateTrainee(ctx, "telco-churn", strategy, 4, 29)
		if err != nil {
			log.Fatalf("simulate %s: %v", strategy, err)
		}
		fmt.Printf("  %-8s", strategy)
		for _, v := range curve {
			fmt.Printf(" %.3f", v)
		}
		fmt.Println()
	}
}
