package main

import (
	"strings"
	"testing"
)

// TestExampleSmoke runs the full example against the public toreador API so
// CI catches API drift in the surface the examples document.
func TestExampleSmoke(t *testing.T) {
	const marker = "leaderboard:"
	var buf strings.Builder
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), marker) {
		t.Errorf("example output missing %q, got:\n%s", marker, buf.String())
	}
}
