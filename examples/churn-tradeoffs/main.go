// Command churn-tradeoffs reproduces the Labs "trial and error" workflow on
// the telco churn scenario: it enumerates the campaign's design alternatives,
// executes one representative alternative per classifier choice, and prints a
// side-by-side comparison of the consequences (accuracy, cost, latency,
// privacy) of each choice — the comparison the paper says is "usually not
// available in the professional Big Data platforms".
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	toreador "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example end to end, writing its report to out. It is
// split from main so the smoke test can exercise the whole workflow.
func run(out io.Writer) error {
	platform, err := toreador.New(toreador.Config{Seed: 7})
	if err != nil {
		return fmt.Errorf("create platform: %w", err)
	}
	if _, err := platform.RegisterScenario(toreador.VerticalTelco, toreador.Sizing{Customers: 1500}); err != nil {
		return fmt.Errorf("register scenario: %w", err)
	}

	campaign := &toreador.Campaign{
		Name:     "churn-tradeoffs",
		Vertical: string(toreador.VerticalTelco),
		Goal: toreador.Goal{
			Task:           toreador.TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "monthly_charge", "support_calls", "dropped_calls", "data_usage_gb"},
		},
		Sources: []toreador.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []toreador.Objective{
			{Indicator: toreador.IndicatorAccuracy, Comparison: toreador.AtLeast, Target: 0.70, Hard: true, Weight: 3},
			{Indicator: toreador.IndicatorCost, Comparison: toreador.AtMost, Target: 2.0, Weight: 2},
			{Indicator: toreador.IndicatorPrivacy, Comparison: toreador.AtLeast, Target: 0.8, Hard: true},
		},
		Regime: toreador.RegimePseudonymize,
	}

	alternatives, err := platform.Alternatives(campaign)
	if err != nil {
		return fmt.Errorf("enumerate alternatives: %w", err)
	}
	fmt.Fprintf(out, "design space: %d alternatives\n\n", len(alternatives))

	// Run one compliant alternative per analytics service (the trainee's
	// "what happens if I pick a different classifier?" question).
	type row struct {
		service  string
		accuracy float64
		cost     float64
		latency  float64
		privacy  float64
		score    float64
		feasible bool
	}
	var rows []row
	seen := map[string]bool{}
	ctx := context.Background()
	for _, alt := range alternatives {
		if !alt.Compliant() {
			continue
		}
		step, ok := alt.Composition.AnalyticsStep()
		if !ok || seen[step.Service.ID] {
			continue
		}
		seen[step.Service.ID] = true
		report, err := platform.Run(ctx, campaign, alt)
		if err != nil {
			return fmt.Errorf("run %s: %w", alt.Fingerprint(), err)
		}
		acc, _ := report.Measured.Get(toreador.IndicatorAccuracy)
		cost, _ := report.Measured.Get(toreador.IndicatorCost)
		lat, _ := report.Measured.Get(toreador.IndicatorLatency)
		priv, _ := report.Measured.Get(toreador.IndicatorPrivacy)
		rows = append(rows, row{
			service:  step.Service.ID,
			accuracy: acc, cost: cost, latency: lat, privacy: priv,
			score: report.Evaluation.Score, feasible: report.Evaluation.Feasible,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].score > rows[j].score })

	fmt.Fprintln(out, "alternative comparison (one run per classifier, same data, same objectives):")
	fmt.Fprintf(out, "%-22s %9s %9s %11s %9s %7s %s\n", "analytics service", "accuracy", "cost", "latency_ms", "privacy", "score", "feasible")
	for _, r := range rows {
		fmt.Fprintf(out, "%-22s %9.3f %9.4f %11.1f %9.2f %7.3f %v\n",
			r.service, r.accuracy, r.cost, r.latency, r.privacy, r.score, r.feasible)
	}

	// Finally, show what the platform itself would have picked.
	decision, err := platform.Plan(campaign, toreador.StrategyExhaustive)
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	fmt.Fprintf(out, "\nplatform recommendation: %s (estimated score %.3f, explored %d/%d alternatives)\n",
		decision.Chosen.Fingerprint(), decision.Score, decision.Explored, decision.TotalAlternatives)
	return nil
}
