// Command quickstart shows the minimal TOREADOR workflow: register a
// scenario, declare a campaign from a business perspective, let the platform
// compile it into a ready-to-be-executed pipeline, run it, and inspect the
// measured indicators against the declared objectives.
package main

import (
	"context"
	"fmt"
	"log"

	toreador "repro"
)

func main() {
	platform, err := toreador.New(toreador.Config{Seed: 42})
	if err != nil {
		log.Fatalf("create platform: %v", err)
	}

	// Register the telco vertical scenario (synthetic subscriber data).
	if _, err := platform.RegisterScenario(toreador.VerticalTelco, toreador.Sizing{Customers: 2000}); err != nil {
		log.Fatalf("register scenario: %v", err)
	}

	// Declare the campaign: business goal, data, objectives, privacy regime.
	campaign := &toreador.Campaign{
		Name:     "quickstart-churn",
		Vertical: string(toreador.VerticalTelco),
		Goal: toreador.Goal{
			Task:           toreador.TaskClassification,
			Description:    "spot subscribers about to churn so retention can call them first",
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "monthly_charge", "support_calls", "dropped_calls", "data_usage_gb"},
		},
		Sources: []toreador.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []toreador.Objective{
			{Indicator: toreador.IndicatorAccuracy, Comparison: toreador.AtLeast, Target: 0.70, Hard: true, Weight: 3},
			{Indicator: toreador.IndicatorCost, Comparison: toreador.AtMost, Target: 2.0, Weight: 2},
			{Indicator: toreador.IndicatorLatency, Comparison: toreador.AtMost, Target: 30_000},
		},
		Regime: toreador.RegimePseudonymize,
	}

	// The BDAaaS function: declarative model in, executed pipeline out.
	result, report, err := platform.Execute(context.Background(), campaign)
	if err != nil {
		log.Fatalf("execute campaign: %v", err)
	}

	fmt.Println("=== TOREADOR quickstart: telco churn campaign ===")
	fmt.Printf("design space:        %d alternatives (%d compliant)\n",
		len(result.Alternatives), len(result.CompliantAlternatives()))
	fmt.Printf("chosen pipeline:     %s\n", result.Chosen.Fingerprint())
	fmt.Printf("deployment:          %s, parallelism %d, %d nodes x %d slots\n",
		result.Chosen.Plan.Platform, result.Chosen.Plan.Parallelism,
		result.Chosen.Plan.Nodes, result.Chosen.Plan.SlotsPerNode)
	fmt.Printf("compilation phases:  validate=%s match=%s compose=%s comply=%s bind=%s\n",
		result.Timings.Validate, result.Timings.Match, result.Timings.Compose,
		result.Timings.Comply, result.Timings.Bind)
	fmt.Println()
	fmt.Println("measured indicators:")
	fmt.Printf("  %s\n", report.Measured)
	fmt.Println()
	fmt.Println("objective evaluation:")
	fmt.Print(report.Evaluation.Summary())
	fmt.Println()
	fmt.Println("pipeline diagnostics:")
	for k, v := range report.Details {
		fmt.Printf("  %-28s %s\n", k, v)
	}
}
