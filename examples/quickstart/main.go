// Command quickstart shows the minimal TOREADOR workflow: register a
// scenario, declare a campaign from a business perspective, let the platform
// compile it into a ready-to-be-executed pipeline, run it, and inspect the
// measured indicators against the declared objectives.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	toreador "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example end to end, writing its report to out. It is
// split from main so the smoke test can exercise the whole workflow.
func run(out io.Writer) error {
	platform, err := toreador.New(toreador.Config{Seed: 42})
	if err != nil {
		return fmt.Errorf("create platform: %w", err)
	}

	// Register the telco vertical scenario (synthetic subscriber data).
	if _, err := platform.RegisterScenario(toreador.VerticalTelco, toreador.Sizing{Customers: 2000}); err != nil {
		return fmt.Errorf("register scenario: %w", err)
	}

	// Declare the campaign: business goal, data, objectives, privacy regime.
	campaign := &toreador.Campaign{
		Name:     "quickstart-churn",
		Vertical: string(toreador.VerticalTelco),
		Goal: toreador.Goal{
			Task:           toreador.TaskClassification,
			Description:    "spot subscribers about to churn so retention can call them first",
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "monthly_charge", "support_calls", "dropped_calls", "data_usage_gb"},
		},
		Sources: []toreador.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []toreador.Objective{
			{Indicator: toreador.IndicatorAccuracy, Comparison: toreador.AtLeast, Target: 0.70, Hard: true, Weight: 3},
			{Indicator: toreador.IndicatorCost, Comparison: toreador.AtMost, Target: 2.0, Weight: 2},
			{Indicator: toreador.IndicatorLatency, Comparison: toreador.AtMost, Target: 30_000},
		},
		Regime: toreador.RegimePseudonymize,
	}

	// The BDAaaS function: declarative model in, executed pipeline out.
	result, report, err := platform.Execute(context.Background(), campaign)
	if err != nil {
		return fmt.Errorf("execute campaign: %w", err)
	}

	fmt.Fprintln(out, "=== TOREADOR quickstart: telco churn campaign ===")
	fmt.Fprintf(out, "design space:        %d alternatives (%d compliant)\n",
		len(result.Alternatives), len(result.CompliantAlternatives()))
	fmt.Fprintf(out, "chosen pipeline:     %s\n", result.Chosen.Fingerprint())
	fmt.Fprintf(out, "deployment:          %s, parallelism %d, %d nodes x %d slots\n",
		result.Chosen.Plan.Platform, result.Chosen.Plan.Parallelism,
		result.Chosen.Plan.Nodes, result.Chosen.Plan.SlotsPerNode)
	fmt.Fprintf(out, "compilation phases:  validate=%s match=%s compose=%s comply=%s bind=%s\n",
		result.Timings.Validate, result.Timings.Match, result.Timings.Compose,
		result.Timings.Comply, result.Timings.Bind)
	fmt.Fprintln(out)
	fmt.Fprintln(out, "measured indicators:")
	fmt.Fprintf(out, "  %s\n", report.Measured)
	fmt.Fprintln(out)
	fmt.Fprintln(out, "objective evaluation:")
	fmt.Fprint(out, report.Evaluation.Summary())
	fmt.Fprintln(out)
	fmt.Fprintln(out, "pipeline diagnostics:")
	for k, v := range report.Details {
		fmt.Fprintf(out, "  %-28s %s\n", k, v)
	}
	return nil
}
