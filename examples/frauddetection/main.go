// Command frauddetection builds a near-real-time fraud-detection campaign on
// the payments scenario and uses the what-if facility to compare a batch and
// a streaming deployment of the same goal — the deployment-stage decision the
// TOREADOR methodology asks users to reason about explicitly.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	toreador "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example end to end, writing its report to out. It is
// split from main so the smoke test can exercise the whole workflow.
func run(out io.Writer) error {
	platform, err := toreador.New(toreador.Config{Seed: 11})
	if err != nil {
		return fmt.Errorf("create platform: %w", err)
	}
	if _, err := platform.RegisterScenario(toreador.VerticalFinance, toreador.Sizing{Customers: 3000}); err != nil {
		return fmt.Errorf("register scenario: %w", err)
	}

	base := &toreador.Campaign{
		Name:     "fraud-batch",
		Vertical: string(toreador.VerticalFinance),
		Goal: toreador.Goal{
			Task:        toreador.TaskAnomaly,
			Description: "flag anomalous card transactions for manual review",
			TargetTable: "payments",
			ValueColumn: "amount",
			LabelColumn: "fraud",
		},
		Sources: []toreador.DataSource{{Table: "payments", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []toreador.Objective{
			{Indicator: toreador.IndicatorAccuracy, Comparison: toreador.AtLeast, Target: 0.3, Hard: true, Weight: 2},
			{Indicator: toreador.IndicatorFreshness, Comparison: toreador.AtMost, Target: 5, Weight: 2},
			{Indicator: toreador.IndicatorCost, Comparison: toreador.AtMost, Target: 3},
			{Indicator: toreador.IndicatorPrivacy, Comparison: toreador.AtLeast, Target: 0.8, Hard: true},
		},
		Regime: toreador.RegimePseudonymize,
	}

	// Variant: same goal and objectives, but the user prefers a streaming
	// deployment for freshness.
	variant := base.Clone()
	variant.Name = "fraud-streaming"
	variant.Preferences = toreador.Preferences{Streaming: true}

	diff, err := platform.WhatIf(base, variant)
	if err != nil {
		return fmt.Errorf("what-if: %w", err)
	}

	fmt.Fprintln(out, "=== fraud detection: batch vs streaming deployment ===")
	fmt.Fprintf(out, "batch choice:     %s\n", diff.Base.Chosen.Fingerprint())
	fmt.Fprintf(out, "streaming choice: %s\n", diff.Variant.Chosen.Fingerprint())
	fmt.Fprintln(out, "\nestimated indicator deltas (streaming - batch):")
	for ind, delta := range diff.Deltas {
		fmt.Fprintf(out, "  %-20s %+.4f\n", ind, delta)
	}
	fmt.Fprintf(out, "\nservices changed: %v\n", diff.ChangedServices)

	// Execute both chosen pipelines to confirm the estimates with measured runs.
	ctx := context.Background()
	for _, c := range []*toreador.Campaign{base, variant} {
		result, report, err := platform.Execute(ctx, c)
		if err != nil {
			return fmt.Errorf("execute %s: %w", c.Name, err)
		}
		fresh, _ := report.Measured.Get(toreador.IndicatorFreshness)
		f1, _ := report.Measured.Get(toreador.IndicatorAccuracy)
		cost, _ := report.Measured.Get(toreador.IndicatorCost)
		fmt.Fprintf(out, "\n%s (measured on %s): detection F1 %.3f, freshness %.2fs, cost %.4f, feasible=%v\n",
			c.Name, result.Chosen.Plan.Platform, f1, fresh, cost, report.Evaluation.Feasible)
	}
	return nil
}
