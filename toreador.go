// Package toreador is the public entry point of the TOREADOR reproduction: a
// model-driven Big Data Analytics-as-a-Service platform plus the TOREADOR
// Labs training environment described in "Scouting Big Data Campaigns using
// TOREADOR Labs" (EDBT 2017 workshops).
//
// The BDAaaS function of the paper — declarative goals in, ready-to-be-
// executed pipeline out — is exposed through the Platform type:
//
//	platform, _ := toreador.New(toreador.Config{Seed: 1})
//	platform.RegisterScenario(toreador.VerticalTelco, toreador.Sizing{})
//	campaign := &toreador.Campaign{ ... }          // declarative model
//	result, _ := platform.Compile(campaign)        // procedural + deployment model
//	report, _ := platform.Run(ctx, campaign, result.Chosen) // measured pipeline run
//
// The Labs environment (challenges, attempts, scoring, comparisons) is
// exposed through OpenLab. Everything is implemented on an in-process
// simulated Big Data substrate; see DESIGN.md for the substitutions made with
// respect to the paper's Spark-based deployment.
package toreador

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/labs"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/repo"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/workload"
)

// Re-exported declarative-model types: users of the library describe
// campaigns entirely in terms of these.
type (
	// Campaign is the declarative model of a Big Data campaign.
	Campaign = model.Campaign
	// Goal describes what the campaign must achieve.
	Goal = model.Goal
	// Objective is a target on a standard indicator.
	Objective = model.Objective
	// DataSource references a registered dataset.
	DataSource = model.DataSource
	// Preferences carries the user's non-functional choices.
	Preferences = model.Preferences
	// Indicator names a measurable property of a campaign.
	Indicator = model.Indicator
	// AnalyticsTask enumerates the supported analytics goals.
	AnalyticsTask = model.AnalyticsTask
	// PrivacyRegime classifies the regulatory constraints on the data.
	PrivacyRegime = model.PrivacyRegime
	// Comparison is the relational operator of an objective.
	Comparison = model.Comparison
)

// Re-exported execution and planning types.
type (
	// CompileResult is the outcome of compiling a campaign.
	CompileResult = core.CompileResult
	// Alternative is one fully elaborated design option.
	Alternative = core.Alternative
	// InterferencePoint reports surviving options per privacy regime.
	InterferencePoint = core.InterferencePoint
	// WhatIfReport compares two campaign variants.
	WhatIfReport = core.WhatIfReport
	// Report is the measured outcome of running an alternative.
	Report = runner.Report
	// Decision is the outcome of planning a campaign.
	Decision = planner.Decision
	// Strategy selects a planning strategy.
	Strategy = planner.Strategy
	// RunRecord is a persisted run summary.
	RunRecord = repo.RunRecord
	// Scenario bundles the generated tables of a vertical.
	Scenario = workload.Scenario
	// Sizing controls generated data volumes.
	Sizing = workload.Sizing
	// Vertical identifies an application domain.
	Vertical = workload.Vertical
	// Table is an in-memory dataset registered with the platform.
	Table = storage.Table
	// Lab is a running TOREADOR Labs instance.
	Lab = labs.Lab
	// Challenge is one Labs exercise.
	Challenge = labs.Challenge
	// Attempt is one executed trainee choice.
	Attempt = labs.Attempt
	// LabSession records attempts and builds leaderboards.
	LabSession = labs.Session
	// TraineeStrategy models a simulated trainee.
	TraineeStrategy = labs.TraineeStrategy
)

// Re-exported service-runtime types: the long-running multi-tenant analytics
// service that wraps the pipeline runner with admission control, SLA-aware
// scheduling, deadlines, retries and graceful degradation.
type (
	// Service is the multi-tenant analytics service runtime.
	Service = service.Service
	// ServiceConfig sizes the service's queue, worker pool and retry policy.
	ServiceConfig = service.Config
	// TenantConfig is a tenant's token-bucket admission budget.
	TenantConfig = service.TenantConfig
	// Ticket tracks one admitted campaign submission to completion.
	Ticket = service.Ticket
	// TicketStatus is a submission's lifecycle state.
	TicketStatus = service.Status
)

// Re-exported service admission errors.
var (
	ErrOverloaded  = service.ErrOverloaded
	ErrRateLimited = service.ErrRateLimited
	ErrShed        = service.ErrShed
	ErrDraining    = service.ErrDraining
)

// Re-exported ticket statuses.
const (
	StatusQueued    = service.StatusQueued
	StatusRunning   = service.StatusRunning
	StatusCompleted = service.StatusCompleted
	StatusShed      = service.StatusShed
	StatusFailed    = service.StatusFailed
)

// Re-exported analytics task constants.
const (
	TaskClassification = model.TaskClassification
	TaskClustering     = model.TaskClustering
	TaskAssociation    = model.TaskAssociation
	TaskAnomaly        = model.TaskAnomaly
	TaskForecasting    = model.TaskForecasting
	TaskSessionization = model.TaskSessionization
	TaskReporting      = model.TaskReporting
)

// Re-exported indicator constants.
const (
	IndicatorAccuracy   = model.IndicatorAccuracy
	IndicatorLatency    = model.IndicatorLatency
	IndicatorCost       = model.IndicatorCost
	IndicatorThroughput = model.IndicatorThroughput
	IndicatorPrivacy    = model.IndicatorPrivacy
	IndicatorFreshness  = model.IndicatorFreshness
)

// Re-exported comparison and regime constants.
const (
	AtLeast = model.AtLeast
	AtMost  = model.AtMost

	RegimeNone         = model.RegimeNone
	RegimeInternal     = model.RegimeInternal
	RegimePseudonymize = model.RegimePseudonymize
	RegimeStrict       = model.RegimeStrict
)

// Re-exported vertical constants.
const (
	VerticalTelco   = workload.VerticalTelco
	VerticalRetail  = workload.VerticalRetail
	VerticalEnergy  = workload.VerticalEnergy
	VerticalWeb     = workload.VerticalWeb
	VerticalFinance = workload.VerticalFinance
)

// Re-exported planning strategies.
const (
	StrategyExhaustive = planner.StrategyExhaustive
	StrategyGreedy     = planner.StrategyGreedy
	StrategyRandom     = planner.StrategyRandom
)

// Re-exported trainee strategies.
const (
	TraineeRandom = labs.TraineeRandom
	TraineeGreedy = labs.TraineeGreedy
	TraineeGuided = labs.TraineeGuided
)

// Config controls platform construction.
type Config struct {
	// Seed drives synthetic data generation, train/test splits and failure
	// injection; fixed seeds make runs reproducible (default 1).
	Seed int64
	// RepositoryDir, when non-empty, enables persistence of campaigns and run
	// records under that directory.
	RepositoryDir string
	// FailureRate enables transient task-failure injection on the simulated
	// cluster (0 disables it).
	FailureRate float64
	// MemoryBudget bounds the bytes of columnar batch data the dataflow
	// engine keeps resident per wide-operator accumulation; batches past the
	// budget spill to temp files and are restored transparently on read.
	// <= 0 (the default) disables spilling.
	MemoryBudget int64
	// DisableSpillCompression turns off the compressed spill frame codec
	// (dictionary strings, delta ints, RLE bitmaps — on by default), so
	// spilled batches are written in the raw v1 layout. Only observable when
	// MemoryBudget makes wide operators spill; reads accept both formats
	// either way. Kept as a disable flag so the zero-value Config gets the
	// compressed default.
	DisableSpillCompression bool
	// DisableEngineClustering makes the clustering task run on the in-process
	// hand-rolled KMeans instead of the dataflow engine's Iterate plan (the
	// default). The two arms are bit-identical on the same seed; the flag is
	// the ablation switch. Kept as a disable flag so the zero-value Config
	// gets the engine default.
	DisableEngineClustering bool
	// StoreDir, when non-empty, opens the durable segment store under that
	// directory: every campaign run saves its prepared dataset as a named
	// table (crash-safe via the manifest WAL), and later campaigns may use
	// those tables as sources — they are scanned back with zone-map filter
	// pushdown instead of being recomputed.
	StoreDir string
	// SpillDir, when non-empty, places the dataflow engine's spill temp files
	// under that directory instead of the system temp directory. The
	// directory must exist.
	SpillDir string
}

// Platform is the BDAaaS entry point: it owns the data catalog, the service
// catalog, the model-driven compiler, the planner and the pipeline runner.
type Platform struct {
	cfg      Config
	data     *storage.Catalog
	store    *store.Store
	compiler *core.Compiler
	runner   *runner.Runner
	planner  *planner.Planner
	repo     *repo.Repository
}

// New builds a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	data := storage.NewCatalog()
	var st *store.Store
	var compilerOpts []core.Option
	runnerOpts := []runner.Option{
		runner.WithSeed(cfg.Seed), runner.WithFailureInjection(cfg.FailureRate),
		runner.WithMemoryBudget(cfg.MemoryBudget),
		runner.WithSpillCompression(!cfg.DisableSpillCompression),
		runner.WithSpillDir(cfg.SpillDir),
		runner.WithEngineClustering(!cfg.DisableEngineClustering),
	}
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir); err != nil {
			return nil, fmt.Errorf("toreador: open store: %w", err)
		}
		compilerOpts = append(compilerOpts, core.WithDurableStore(st))
		runnerOpts = append(runnerOpts, runner.WithResultStore(st))
	}
	compiler, err := core.NewCompiler(data, compilerOpts...)
	if err != nil {
		return nil, err
	}
	run, err := runner.New(data, runnerOpts...)
	if err != nil {
		return nil, err
	}
	plan, err := planner.New(compiler)
	if err != nil {
		return nil, err
	}
	p := &Platform{cfg: cfg, data: data, store: st, compiler: compiler, runner: run, planner: plan}
	if cfg.RepositoryDir != "" {
		r, err := repo.Open(cfg.RepositoryDir)
		if err != nil {
			return nil, err
		}
		p.repo = r
	}
	return p, nil
}

// RegisterTable registers an existing dataset with the platform.
func (p *Platform) RegisterTable(t *Table) error {
	return p.data.Register(t)
}

// RegisterScenario generates the synthetic datasets of a vertical scenario
// and registers them.
func (p *Platform) RegisterScenario(v Vertical, sizing Sizing) (*Scenario, error) {
	sc, err := workload.NewGenerator(p.cfg.Seed).Generate(v, sizing)
	if err != nil {
		return nil, err
	}
	if err := sc.Register(p.data); err != nil {
		return nil, err
	}
	return sc, nil
}

// Tables lists the registered dataset names.
func (p *Platform) Tables() []string { return p.data.Names() }

// Store returns the durable segment store, or nil when the platform was built
// without a StoreDir.
func (p *Platform) Store() *store.Store { return p.store }

// Compile runs the model-driven transformation: declarative campaign in,
// chosen alternative plus the full design space out.
func (p *Platform) Compile(c *Campaign) (*CompileResult, error) {
	result, err := p.compiler.Compile(c)
	if err != nil {
		return nil, err
	}
	if p.repo != nil {
		if _, err := p.repo.SaveCampaign(c); err != nil {
			return nil, fmt.Errorf("toreador: persist campaign: %w", err)
		}
	}
	return result, nil
}

// Alternatives enumerates the campaign's full design space without choosing.
func (p *Platform) Alternatives(c *Campaign) ([]Alternative, error) {
	alternatives, _, err := p.compiler.EnumerateAlternatives(c)
	return alternatives, err
}

// Run executes one alternative and measures the standard indicators.
func (p *Platform) Run(ctx context.Context, c *Campaign, alt Alternative) (*Report, error) {
	report, err := p.runner.Run(ctx, c, alt)
	if err != nil {
		return nil, err
	}
	if p.repo != nil {
		rec := RunRecord{
			Campaign:  c.Name,
			Label:     alt.Fingerprint(),
			Compliant: report.Compliant,
			Feasible:  report.Evaluation.Feasible,
			Score:     report.Evaluation.Score,
			Indicators: func() map[string]float64 {
				out := map[string]float64{}
				for k, v := range report.Measured {
					out[string(k)] = v
				}
				return out
			}(),
			Details: report.Details,
		}
		if _, err := p.repo.SaveRun(rec); err != nil {
			return nil, fmt.Errorf("toreador: persist run: %w", err)
		}
	}
	return report, nil
}

// Execute is the full BDAaaS function: it compiles the campaign, runs the
// chosen alternative and returns both the compile result and the measured
// report.
func (p *Platform) Execute(ctx context.Context, c *Campaign) (*CompileResult, *Report, error) {
	result, err := p.Compile(c)
	if err != nil {
		return nil, nil, err
	}
	report, err := p.Run(ctx, c, result.Chosen)
	if err != nil {
		return result, nil, err
	}
	return result, report, nil
}

// Plan applies a planning strategy to the campaign's design space.
func (p *Platform) Plan(c *Campaign, strategy Strategy) (Decision, error) {
	return p.planner.Plan(c, strategy)
}

// ExplainPipeline renders the physical dataflow plan (fused stages, shuffle
// boundaries, map-side combine decisions) that executing the alternative's
// preparation pipeline would run, without running it.
func (p *Platform) ExplainPipeline(c *Campaign, alt Alternative) (string, error) {
	return p.runner.ExplainPlan(c, alt)
}

// Interference sweeps the campaign across privacy regimes and reports the
// surviving design options per stage.
func (p *Platform) Interference(c *Campaign) ([]InterferencePoint, error) {
	return p.compiler.Interference(c)
}

// WhatIf compiles two campaign variants and reports how the chosen pipeline
// and its estimated indicators change.
func (p *Platform) WhatIf(base, variant *Campaign) (*WhatIfReport, error) {
	return p.compiler.WhatIf(base, variant)
}

// Runs returns the persisted run records of a campaign; it requires a
// repository-backed platform.
func (p *Platform) Runs(campaign string) ([]RunRecord, error) {
	if p.repo == nil {
		return nil, errors.New("toreador: platform has no repository configured")
	}
	return p.repo.ListRuns(campaign)
}

// NewService starts the long-running multi-tenant service runtime on top of
// the platform's runner: submissions are admission-controlled per tenant,
// scheduled by SLA urgency, executed under per-campaign deadlines with
// transient-fault retries, and drained gracefully on Shutdown.
func (p *Platform) NewService(cfg ServiceConfig) (*Service, error) {
	return service.New(p.runner, cfg)
}

// OpenLab builds a TOREADOR Labs instance with freshly generated scenario
// data for every vertical.
func OpenLab(seed int64, sizing Sizing) (*Lab, error) {
	return labs.NewLab(labs.Config{Seed: seed, Sizing: sizing})
}

// NewLabSession starts an empty Labs session for recording attempts.
func NewLabSession(lab *Lab) *LabSession { return labs.NewSession(lab) }

// CompareAttempts lays Labs attempts side by side, best score first.
func CompareAttempts(attempts []*Attempt) []labs.ComparisonRow { return labs.Compare(attempts) }

// BuiltinChallenges returns the standard Labs challenges.
func BuiltinChallenges() []Challenge { return labs.BuiltinChallenges() }
