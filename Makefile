GO ?= go

.PHONY: build test race bench bench-artifact bench-compare fmt vet lint fuzz examples soak serve-smoke crash-matrix ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One full pass over every benchmark with allocation stats; CI runs the same
# command with -benchtime=1x as a smoke test.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Writes a commit-stamped experiment artifact into the tracked
# bench-artifacts/ directory (the same sizing CI uses).
bench-artifact:
	$(GO) run ./cmd/toreador-bench \
		-customers 400 -meters 2 -days 3 -users 60 -attempts 2 -json \
		-commit "$$(git rev-parse --short=12 HEAD)" \
		> "bench-artifacts/BENCH_$$(git rev-parse --short=12 HEAD).json"

# Diffs the two newest artifacts in bench-artifacts/ and prints a
# per-benchmark delta table — the perf trajectory across commits. The
# threshold turns the diff into a regression gate: any wall-time metric more
# than BENCH_THRESHOLD percent slower than the previous artifact fails the
# target (set BENCH_THRESHOLD=0 for a report-only diff).
BENCH_THRESHOLD ?= 15
bench-compare:
	$(GO) run ./cmd/toreador-bench -compare bench-artifacts -threshold $(BENCH_THRESHOLD)

# Fails (listing the offending files) when any file needs reformatting.
fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Uses staticcheck when it is on PATH (CI installs
# it); otherwise falls back to go vet so the target stays runnable on machines
# without the tool.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not found; falling back to go vet ./..."; \
		$(GO) vet ./...; \
	fi

# Short coverage-guided fuzz of the binary decoders: the spill-frame decoder
# (both codec versions), the manifest WAL decoder and the segment-footer
# decoder. Each must reject arbitrary corruption with a typed error and never
# panic or over-allocate; the store targets are seeded from golden files. The
# time box keeps the target usable as a pre-commit check; raise FUZZTIME for a
# longer soak. Go fuzzing accepts one -fuzz pattern per package invocation,
# so the store targets run back to back.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeBatch' -fuzztime $(FUZZTIME) ./internal/storage/
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeManifest' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeSegmentFooter' -fuzztime $(FUZZTIME) ./internal/store/

# Fault-injection soak of the multi-tenant service runtime under the race
# detector: concurrent tenants, injected cluster faults, a tight memory
# budget, and the invariant that every submission ends in exactly one of
# completed/rejected/shed/failed with no goroutine or spill-file leak.
soak:
	$(GO) test -race -count=1 -timeout 5m -run 'TestSoakFaultInjection' ./internal/service/

# Boots toreadorctl serve on an ephemeral port and drives a campaign through
# the HTTP surface (submit, stats, graceful shutdown).
serve-smoke:
	$(GO) test -race -count=1 -timeout 5m -run 'TestServeSmoke' ./cmd/toreadorctl/

# Crash-recovery proof of the durable segment store under the race detector:
# the fault-injection matrix crashes (and error-injects) the store at every
# mutating filesystem operation in the write/commit/checkpoint path under
# three data-loss models, reopens, and asserts the recovered manifest is
# exactly the pre- or post-commit state. The recovery edge cases and the
# toreadorctl tables smoke ride along.
crash-matrix:
	$(GO) test -race -count=1 -timeout 5m \
		-run 'TestCrashRecoveryMatrix|TestErrorInjectionMatrix|TestRecover' ./internal/store/
	$(GO) test -race -count=1 -timeout 5m -run 'TestCLITablesSmoke' ./cmd/toreadorctl/

# Compiles every example main so API drift in the public surface is caught
# even before their smoke tests run.
examples:
	$(GO) build ./examples/...

ci: fmt vet lint build examples race
