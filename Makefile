GO ?= go

.PHONY: build test race bench fmt vet examples ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One full pass over every benchmark with allocation stats; CI runs the same
# command with -benchtime=1x as a smoke test.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Fails (listing the offending files) when any file needs reformatting.
fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Compiles every example main so API drift in the public surface is caught
# even before their smoke tests run.
examples:
	$(GO) build ./examples/...

ci: fmt vet build examples race
